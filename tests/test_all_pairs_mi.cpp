// Tests for the all-pairs MI pass (Algorithm 4): all three scheduling
// strategies must agree with each other and with per-pair reference
// computation, for every thread count.
#include <gtest/gtest.h>

#include "core/all_pairs_mi.hpp"
#include "core/info_theory.hpp"
#include "core/marginalizer.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

PotentialTable build_table(const Dataset& data) {
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  return builder.build(data);
}

MiMatrix reference_mi(const PotentialTable& table) {
  const std::size_t n = table.codec().variable_count();
  MiMatrix out(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::size_t vars[] = {i, j};
      out.set(i, j, mutual_information(table.marginalize_sequential(vars)));
    }
  }
  return out;
}

void expect_same(const MiMatrix& a, const MiMatrix& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_NEAR(a.at(i, j), b.at(i, j), 1e-10) << i << "," << j;
    }
  }
}

struct MiConfig {
  AllPairsStrategy strategy;
  std::size_t threads;
};

class AllPairsStrategies : public ::testing::TestWithParam<MiConfig> {};

TEST_P(AllPairsStrategies, MatchesSequentialReference) {
  const auto [strategy, threads] = GetParam();
  const Dataset data = generate_chain_correlated(15000, 9, 2, 0.7, 31);
  const PotentialTable table = build_table(data);
  AllPairsMi all_pairs(AllPairsOptions{threads, strategy});
  expect_same(all_pairs.compute(table), reference_mi(table));
  EXPECT_EQ(all_pairs.stats().pair_count, 9u * 8 / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllPairsStrategies,
    ::testing::Values(MiConfig{AllPairsStrategy::kPairParallel, 1},
                      MiConfig{AllPairsStrategy::kPairParallel, 4},
                      MiConfig{AllPairsStrategy::kPairParallel, 16},
                      MiConfig{AllPairsStrategy::kEntryParallel, 1},
                      MiConfig{AllPairsStrategy::kEntryParallel, 4},
                      MiConfig{AllPairsStrategy::kFused, 1},
                      MiConfig{AllPairsStrategy::kFused, 4},
                      MiConfig{AllPairsStrategy::kFused, 16}),
    [](const auto& param_info) {
      const char* name =
          param_info.param.strategy == AllPairsStrategy::kPairParallel ? "pair"
          : param_info.param.strategy == AllPairsStrategy::kEntryParallel
              ? "entry"
              : "fused";
      return std::string(name) + "_" + std::to_string(param_info.param.threads) +
             "threads";
    });

TEST(AllPairsMi, MixedCardinalitiesAgreeAcrossStrategies) {
  const Dataset data =
      generate_uniform(10000, std::vector<std::uint32_t>{2, 3, 4, 2, 5}, 32);
  const PotentialTable table = build_table(data);
  const MiMatrix pair =
      AllPairsMi(AllPairsOptions{3, AllPairsStrategy::kPairParallel})
          .compute(table);
  const MiMatrix fused =
      AllPairsMi(AllPairsOptions{3, AllPairsStrategy::kFused}).compute(table);
  const MiMatrix entry =
      AllPairsMi(AllPairsOptions{3, AllPairsStrategy::kEntryParallel})
          .compute(table);
  expect_same(pair, fused);
  expect_same(pair, entry);
}

TEST(AllPairsMi, IndependentDataHasNearZeroMiEverywhere) {
  const Dataset data = generate_uniform(50000, 8, 2, 33);
  const PotentialTable table = build_table(data);
  const MiMatrix mi =
      AllPairsMi(AllPairsOptions{4, AllPairsStrategy::kFused}).compute(table);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i + 1; j < 8; ++j) {
      // Finite-sample MI bias is ~(r-1)^2/(2m) ≈ 1e-5 here.
      EXPECT_LT(mi.at(i, j), 5e-4);
    }
  }
}

TEST(AllPairsMi, ChainDataOrdersPairsByDistance) {
  const Dataset data = generate_chain_correlated(40000, 6, 2, 0.9, 34);
  const PotentialTable table = build_table(data);
  const MiMatrix mi =
      AllPairsMi(AllPairsOptions{2, AllPairsStrategy::kFused}).compute(table);
  for (std::size_t i = 0; i + 2 < 6; ++i) {
    EXPECT_GT(mi.at(i, i + 1), mi.at(i, i + 2));
  }
}

TEST(AllPairsMi, MatrixIsSymmetricWithZeroDiagonal) {
  const Dataset data = generate_uniform(5000, 5, 3, 35);
  const PotentialTable table = build_table(data);
  const MiMatrix mi =
      AllPairsMi(AllPairsOptions{2, AllPairsStrategy::kPairParallel})
          .compute(table);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(mi.at(i, i), 0.0);
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(mi.at(i, j), mi.at(j, i));
    }
  }
}

TEST(MiMatrix, PairsAboveSortsDescendingAndFilters) {
  MiMatrix mi(4);
  mi.set(0, 1, 0.5);
  mi.set(0, 2, 0.1);
  mi.set(1, 3, 0.9);
  mi.set(2, 3, 0.005);
  const auto pairs = mi.pairs_above(0.01);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0].i, 1u);
  EXPECT_EQ(pairs[0].j, 3u);
  EXPECT_EQ(pairs[1].i, 0u);
  EXPECT_EQ(pairs[1].j, 1u);
  EXPECT_EQ(pairs[2].i, 0u);
  EXPECT_EQ(pairs[2].j, 2u);
}

TEST(AllPairsMi, StatsTrackWorkerActivity) {
  const Dataset data = generate_uniform(8000, 6, 2, 36);
  const PotentialTable table = build_table(data);
  AllPairsMi all_pairs(AllPairsOptions{4, AllPairsStrategy::kFused});
  (void)all_pairs.compute(table);
  const AllPairsStats& stats = all_pairs.stats();
  EXPECT_GT(stats.total_seconds, 0.0);
  ASSERT_EQ(stats.worker_entries_visited.size(), 4u);
  std::uint64_t visited = 0;
  for (const std::uint64_t v : stats.worker_entries_visited) visited += v;
  EXPECT_EQ(visited, table.distinct_keys());
}

TEST(AllPairsMi, RejectsDegenerateInputs) {
  const Dataset data = generate_uniform(100, 1, 2, 37);
  const PotentialTable table = build_table(data);
  AllPairsMi all_pairs;
  EXPECT_THROW((void)all_pairs.compute(table), PreconditionError);
  EXPECT_THROW(AllPairsMi(AllPairsOptions{0, AllPairsStrategy::kFused}),
               PreconditionError);
}

}  // namespace
}  // namespace wfbn
