// Correctness tests for the parallel marginalization primitive (Algorithm 3):
// parallel output must equal both the sequential sweep and a brute-force
// count over the raw dataset, for every thread count and variable subset.
#include <gtest/gtest.h>

#include "core/marginalizer.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

PotentialTable build_table(const Dataset& data, std::size_t threads = 4) {
  WaitFreeBuilderOptions options;
  options.threads = threads;
  WaitFreeBuilder builder(options);
  return builder.build(data);
}

MarginalTable brute_force(const Dataset& data,
                          std::span<const std::size_t> vars) {
  std::vector<std::uint32_t> cards;
  for (const std::size_t v : vars) cards.push_back(data.cardinalities()[v]);
  MarginalTable out(std::vector<std::size_t>(vars.begin(), vars.end()), cards);
  std::vector<State> sub(vars.size());
  for (std::size_t i = 0; i < data.sample_count(); ++i) {
    const auto row = data.row(i);
    for (std::size_t k = 0; k < vars.size(); ++k) sub[k] = row[vars[k]];
    out.add(out.index_of(sub), 1);
  }
  return out;
}

void expect_same(const MarginalTable& a, const MarginalTable& b) {
  ASSERT_EQ(a.cell_count(), b.cell_count());
  ASSERT_EQ(a.variables(), b.variables());
  for (std::uint64_t cell = 0; cell < a.cell_count(); ++cell) {
    EXPECT_EQ(a.count_at(cell), b.count_at(cell)) << "cell " << cell;
  }
}

TEST(Marginalizer, SingleVariableMatchesBruteForce) {
  const Dataset data = generate_uniform(15000, 8, 3, 21);
  const PotentialTable table = build_table(data);
  const Marginalizer marginalizer(4);
  for (std::size_t v = 0; v < 8; ++v) {
    const std::size_t vars[] = {v};
    expect_same(marginalizer.marginalize(table, vars), brute_force(data, vars));
  }
}

TEST(Marginalizer, PairMatchesBruteForce) {
  const Dataset data = generate_chain_correlated(20000, 10, 2, 0.8, 22);
  const PotentialTable table = build_table(data);
  const Marginalizer marginalizer(3);
  const std::size_t pairs[][2] = {{0, 1}, {3, 7}, {9, 0}, {5, 4}};
  for (const auto& p : pairs) {
    const std::size_t vars[] = {p[0], p[1]};
    expect_same(marginalizer.marginalize(table, vars), brute_force(data, vars));
  }
}

TEST(Marginalizer, TripleWithMixedCardinalities) {
  const Dataset data =
      generate_uniform(12000, std::vector<std::uint32_t>{2, 4, 3, 5, 2}, 23);
  const PotentialTable table = build_table(data, 5);
  const Marginalizer marginalizer(2);
  const std::size_t vars[] = {4, 1, 2};
  expect_same(marginalizer.marginalize(table, vars), brute_force(data, vars));
}

class MarginalizerThreads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MarginalizerThreads, ParallelEqualsSequentialForAnyThreadCount) {
  const std::size_t threads = GetParam();
  const Dataset data = generate_uniform(25000, 12, 2, 24);
  const PotentialTable table = build_table(data, 8);
  const Marginalizer marginalizer(threads);
  const std::size_t vars[] = {2, 9, 11};
  expect_same(marginalizer.marginalize(table, vars),
              table.marginalize_sequential(vars));
  // Instrumentation: every table entry visited exactly once across workers.
  std::uint64_t visited = 0;
  for (const auto& ws : marginalizer.worker_stats()) {
    visited += ws.entries_visited;
  }
  EXPECT_EQ(visited, table.distinct_keys());
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, MarginalizerThreads,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32),
                         [](const auto& param_info) {
                           return std::to_string(param_info.param) + "threads";
                         });

TEST(Marginalizer, WorksAfterRebalance) {
  const Dataset data = generate_skewed(20000, 12, 2, 1e-4, 0.9, 25);
  PotentialTable table = build_table(data, 8);
  const std::size_t vars[] = {0, 5};
  const Marginalizer marginalizer(8);
  const MarginalTable before = marginalizer.marginalize(table, vars);
  // Rebalancing may break construction-time ownership, which marginalization
  // does not rely on (paper §IV-C).
  table.partitions().rebalance();
  const MarginalTable after = marginalizer.marginalize(table, vars);
  expect_same(before, after);
}

TEST(Marginalizer, FullJointRecoversAllCounts) {
  const Dataset data = generate_uniform(5000, 4, 3, 26);
  const PotentialTable table = build_table(data);
  const std::size_t vars[] = {0, 1, 2, 3};
  const Marginalizer marginalizer(4);
  const MarginalTable joint = marginalizer.marginalize(table, vars);
  EXPECT_EQ(joint.total(), 5000u);
  std::vector<State> states(4);
  table.partitions().for_each([&](Key key, std::uint64_t c) {
    table.codec().decode_all(key, states);
    EXPECT_EQ(joint.count_of(states), c);
  });
}

TEST(Marginalizer, MarginalTotalsAlwaysEqualSampleCount) {
  const Dataset data = generate_chain_correlated(8000, 6, 3, 0.5, 27);
  const PotentialTable table = build_table(data);
  const Marginalizer marginalizer(2);
  for (std::size_t v = 0; v < 6; ++v) {
    const std::size_t vars[] = {v};
    EXPECT_EQ(marginalizer.marginalize(table, vars).total(), 8000u);
  }
}

TEST(Marginalizer, InvalidArgumentsRejected) {
  const Dataset data = generate_uniform(100, 4, 2, 28);
  const PotentialTable table = build_table(data, 2);
  EXPECT_THROW(Marginalizer(0), PreconditionError);
  const Marginalizer marginalizer(2);
  const std::size_t empty[] = {0};
  (void)empty;
  EXPECT_THROW((void)marginalizer.marginalize(table, {}), PreconditionError);
  const std::size_t out_of_range[] = {9};
  EXPECT_THROW((void)marginalizer.marginalize(table, out_of_range),
               PreconditionError);
}

}  // namespace
}  // namespace wfbn
