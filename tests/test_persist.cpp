// Tests for the snapshot durability layer (src/serve/persist): segment
// round-trips at both key widths, the crash-point sweep over every persist
// fault point, recovery semantics, and the DurableTableStore wrapper.
//
// The central oracle, enforced at every injected crash: after reopening,
// the recovered store serves a byte-identical snapshot at the newest version
// whose segment completed its atomic rename — never a torn table, never a
// version that was not durably published.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "serve/persist/durable_store.hpp"
#include "serve/persist/format.hpp"
#include "serve/persist/fs_util.hpp"
#include "serve/persist/snapshot_reader.hpp"
#include "serve/persist/snapshot_writer.hpp"
#include "serve/snapshot.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace wfbn {
namespace {

namespace persist = serve::persist;

std::filesystem::path fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("wfbn_persist_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Width-generic helpers: the crash sweep and round-trips run identically
// over narrow (64-bit) and wide (two-word) keys.

template <typename K>
struct WidthOps;

template <>
struct WidthOps<Key> {
  using Builder = WaitFreeBuilder;
  using Options = WaitFreeBuilderOptions;
  static Dataset make_data(std::size_t rows, std::uint64_t seed) {
    return generate_uniform(rows, 8, 2, seed);
  }
};

template <>
struct WidthOps<WideKey> {
  using Builder = WideWaitFreeBuilder;
  using Options = WideBuilderOptions;
  static Dataset make_data(std::size_t rows, std::uint64_t seed) {
    // 100 binary variables: past the 64-bit key limit by 37 bits.
    return generate_chain_correlated(rows, 100, 2, 0.8, seed);
  }
};

template <typename K>
BasicPotentialTable<K> build_table(const Dataset& data,
                                   std::size_t threads = 4) {
  typename WidthOps<K>::Options options;
  options.threads = threads;
  typename WidthOps<K>::Builder builder(options);
  return builder.build(data);
}

/// Byte-identical serving state: same schema, same per-partition layout,
/// same counts, same sample count. Partition-by-partition (not just merged)
/// because recovery must restore the exact partition assignment the
/// marginalization primitives will sweep.
template <typename K>
void expect_tables_identical(const BasicPotentialTable<K>& a,
                             const BasicPotentialTable<K>& b) {
  ASSERT_EQ(a.sample_count(), b.sample_count());
  ASSERT_EQ(a.partition_count(), b.partition_count());
  ASSERT_EQ(a.codec().cardinalities(), b.codec().cardinalities());
  ASSERT_EQ(a.partitions().scheme(), b.partitions().scheme());
  ASSERT_EQ(a.partitions().state_space(), b.partitions().state_space());
  for (std::size_t p = 0; p < a.partition_count(); ++p) {
    ASSERT_EQ(a.partition(p).size(), b.partition(p).size()) << "partition " << p;
    bool equal = true;
    a.partition(p).for_each([&](K key, std::uint64_t c) {
      if (b.partition(p).count(key) != c) equal = false;
    });
    ASSERT_TRUE(equal) << "partition " << p << " contents differ";
  }
  ASSERT_TRUE(b.validate());
}

// ------------------------------------------------------------- round trips

template <typename K>
void run_round_trip(const std::string& tag, bool section_checksums) {
  const Dataset data = WidthOps<K>::make_data(4000, 0xD1);
  const BasicPotentialTable<K> table = build_table<K>(data);
  const serve::BasicSnapshot<K> snap(table, 7);

  const std::filesystem::path dir = fresh_dir(tag);
  persist::WriterOptions options;
  options.section_checksums = section_checksums;
  persist::BasicSnapshotWriter<K> writer(dir, options);
  writer.write(snap);

  const persist::SegmentData<K> loaded =
      persist::read_segment<K>(dir / persist::segment_name(7));
  EXPECT_EQ(loaded.version, 7u);
  expect_tables_identical(table, loaded.table);

  // And the directory as a whole recovers to the same snapshot.
  const persist::RecoveryResult<K> recovered =
      persist::recover_store_dir<K>(dir);
  ASSERT_TRUE(recovered.table.has_value());
  EXPECT_EQ(recovered.report.recovered_version, 7u);
  EXPECT_TRUE(recovered.report.manifest_valid);
  EXPECT_EQ(recovered.report.manifest_version, 7u);
  EXPECT_TRUE(recovered.report.rejected.empty());
  expect_tables_identical(table, *recovered.table);
}

TEST(SnapshotPersist, NarrowRoundTripIsByteIdentical) {
  run_round_trip<Key>("narrow_rt", true);
}

TEST(SnapshotPersist, WideRoundTripIsByteIdentical) {
  run_round_trip<WideKey>("wide_rt", true);
}

TEST(SnapshotPersist, RoundTripWithoutSectionChecksumsStillValidates) {
  run_round_trip<Key>("nochecksum_rt", false);
}

TEST(SnapshotPersist, NewestValidSegmentWinsOverStaleManifest) {
  // Crash window: segment v2 renamed, manifest still names v1. Durability
  // was reached at the rename, so recovery must serve v2 — and reopening
  // must repair the manifest.
  const Dataset base = WidthOps<Key>::make_data(3000, 0xD2);
  const Dataset more = WidthOps<Key>::make_data(5000, 0xD3);
  const PotentialTable t1 = build_table<Key>(base);
  const PotentialTable t2 = build_table<Key>(more);

  const std::filesystem::path dir = fresh_dir("stale_manifest");
  persist::SnapshotWriter writer(dir);
  writer.write(serve::Snapshot(t1, 1));           // segment 1 + manifest → 1
  writer.write_segment(serve::Snapshot(t2, 2));   // segment 2, manifest stale

  const auto recovered = persist::recover_store_dir<Key>(dir);
  ASSERT_TRUE(recovered.table.has_value());
  EXPECT_EQ(recovered.report.recovered_version, 2u);
  EXPECT_TRUE(recovered.report.manifest_valid);
  EXPECT_EQ(recovered.report.manifest_version, 1u);
  expect_tables_identical(t2, *recovered.table);

  // Reopen repairs the manifest to name the recovered version.
  persist::DurableOptions options;
  options.async = false;
  auto store = persist::DurableTableStore::open(dir, options);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->version(), 2u);
  const auto after = persist::recover_store_dir<Key>(dir);
  EXPECT_TRUE(after.report.manifest_valid);
  EXPECT_EQ(after.report.manifest_version, 2u);
}

TEST(SnapshotPersist, PruneKeepsNewestSegments) {
  const Dataset data = WidthOps<Key>::make_data(1500, 0xD4);
  const PotentialTable table = build_table<Key>(data);
  const std::filesystem::path dir = fresh_dir("prune");
  persist::WriterOptions options;
  options.keep_segments = 2;
  persist::SnapshotWriter writer(dir, options);
  for (std::uint64_t v = 1; v <= 5; ++v) {
    writer.write(serve::Snapshot(table, v));
  }
  EXPECT_FALSE(std::filesystem::exists(dir / persist::segment_name(3)));
  EXPECT_TRUE(std::filesystem::exists(dir / persist::segment_name(4)));
  EXPECT_TRUE(std::filesystem::exists(dir / persist::segment_name(5)));
  EXPECT_EQ(persist::recover_store_dir<Key>(dir).report.recovered_version, 5u);
}

// --------------------------------------------------------- crash-point sweep

// Every persist fault point × hit index, at both key widths: arm the point,
// attempt to persist version 2 over a durable version 1, treat the injected
// throw as a power cut (no cleanup), reopen, and require:
//  - the recovered version is 1 or 2, nothing else, no error;
//  - it is 2 exactly when segment 2 completed its atomic rename;
//  - the recovered table is byte-identical to the corresponding reference;
//  - orphaned temp files are ignored by recovery and removed by reopening.
struct CrashConfig {
  fault::Point point;
  std::uint64_t fire_on;
};

// Hit indices per atomic write: open/write/rename are hit once per file
// (segment, then manifest), fsync twice per file (file then directory), and
// persist.manifest once before the manifest write begins. fire_on values
// past a point's last hit simply never fire — the sweep then exercises the
// clean-completion arm of the oracle.
const CrashConfig kCrashConfigs[] = {
    {fault::Point::kPersistOpen, 1},    {fault::Point::kPersistOpen, 2},
    {fault::Point::kPersistWrite, 1},   {fault::Point::kPersistWrite, 2},
    {fault::Point::kPersistFsync, 1},   {fault::Point::kPersistFsync, 2},
    {fault::Point::kPersistFsync, 3},   {fault::Point::kPersistFsync, 4},
    {fault::Point::kPersistRename, 1},  {fault::Point::kPersistRename, 2},
    {fault::Point::kPersistManifest, 1},
};

template <typename K>
void run_crash_sweep(const std::string& tag) {
  const Dataset base = WidthOps<K>::make_data(2500, 0xE1);
  const Dataset more = WidthOps<K>::make_data(4000, 0xE2);
  const BasicPotentialTable<K> t1 = build_table<K>(base);
  const BasicPotentialTable<K> t2 = build_table<K>(more);

  for (const CrashConfig& config : kCrashConfigs) {
    SCOPED_TRACE(std::string(fault::point_name(config.point)) + "@" +
                 std::to_string(config.fire_on));
    const std::filesystem::path dir =
        fresh_dir(tag + "_" + fault::point_name(config.point) + "_" +
                  std::to_string(config.fire_on));
    persist::BasicSnapshotWriter<K> writer(dir);
    writer.write(serve::BasicSnapshot<K>(t1, 1));  // durable baseline

    bool crashed = false;
    {
      fault::ScopedFaultInjection injection;
      fault::arm(config.point, config.fire_on);
      try {
        writer.write(serve::BasicSnapshot<K>(t2, 2));
      } catch (const InjectedFault&) {
        crashed = true;  // power cut: no cleanup of temps or partial state
      }
    }

    const bool segment2_renamed =
        std::filesystem::exists(dir / persist::segment_name(2));
    const persist::RecoveryResult<K> recovered =
        persist::recover_store_dir<K>(dir);
    ASSERT_TRUE(recovered.table.has_value());
    const std::uint64_t v = recovered.report.recovered_version;
    ASSERT_TRUE(v == 1 || v == 2) << "recovered " << v;
    EXPECT_EQ(v == 2, segment2_renamed)
        << "durability frontier must be exactly the completed renames";
    if (!crashed) {
      EXPECT_EQ(v, 2u);
    }
    expect_tables_identical(v == 2 ? t2 : t1, *recovered.table);

    // Reopen as a live store: serves the same snapshot at the durable
    // version, cleans crash orphans, and accepts further ingests.
    persist::DurableOptions options;
    options.async = false;
    auto store = persist::BasicDurableTableStore<K>::open(dir, options);
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->version(), v);
    EXPECT_EQ(store->last_durable_version(), v);
    expect_tables_identical(v == 2 ? t2 : t1, store->current()->table());
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      EXPECT_NE(entry.path().extension(), persist::kTempSuffix)
          << "reopen must remove crash orphans: " << entry.path();
    }
    const serve::IngestStats stats = store->ingest(more);
    EXPECT_EQ(stats.published_version, v + 1);
    EXPECT_TRUE(store->flush());
    EXPECT_EQ(store->last_durable_version(), v + 1);
  }
}

TEST(PersistCrashSweep, NarrowEveryFaultPointRecoversToDurableFrontier) {
  run_crash_sweep<Key>("crash_narrow");
}

TEST(PersistCrashSweep, WideEveryFaultPointRecoversToDurableFrontier) {
  run_crash_sweep<WideKey>("crash_wide");
}

// ------------------------------------------------------- DurableTableStore

TEST(DurableTableStore, FreshStoreIsDurableFromVersionOne) {
  const Dataset data = WidthOps<Key>::make_data(2000, 0xF1);
  const std::filesystem::path dir = fresh_dir("fresh_v1");
  persist::DurableOptions options;
  options.async = false;
  {
    persist::DurableTableStore store(dir, build_table<Key>(data), options);
    EXPECT_EQ(store.version(), 1u);
    EXPECT_EQ(store.last_durable_version(), 1u);
  }
  // The store object is gone; the directory alone restores version 1.
  auto reopened = persist::DurableTableStore::open(dir, options);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->version(), 1u);
  expect_tables_identical(build_table<Key>(data),
                          reopened->current()->table());
}

TEST(DurableTableStore, IngestFlushReopenResumesVersionSequence) {
  const Dataset base = WidthOps<Key>::make_data(2000, 0xF2);
  const Dataset batch = WidthOps<Key>::make_data(1000, 0xF3);
  const std::filesystem::path dir = fresh_dir("resume");
  persist::DurableOptions options;  // async

  {
    persist::DurableTableStore store(dir, build_table<Key>(base), options);
    for (int i = 0; i < 3; ++i) (void)store.ingest(batch);
    EXPECT_EQ(store.version(), 4u);
    EXPECT_TRUE(store.flush());
    EXPECT_EQ(store.last_durable_version(), 4u);
  }

  persist::RecoveryReport report;
  auto reopened = persist::DurableTableStore::open(dir, options, &report);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(report.recovered_version, 4u);
  EXPECT_EQ(reopened->version(), 4u);
  // The sequence resumes: the next ingest is version 5, not a reissued 2.
  const serve::IngestStats stats = reopened->ingest(batch);
  EXPECT_EQ(stats.published_version, 5u);
  EXPECT_TRUE(reopened->flush());
  EXPECT_EQ(reopened->last_durable_version(), 5u);
}

TEST(DurableTableStore, OpenOnEmptyDirectoryReturnsNull) {
  const std::filesystem::path dir = fresh_dir("empty_open");
  persist::RecoveryReport report;
  EXPECT_EQ(persist::DurableTableStore::open(dir, {}, &report), nullptr);
  EXPECT_EQ(report.recovered_version, 0u);
  EXPECT_FALSE(report.manifest_valid);
  EXPECT_EQ(report.segments_scanned, 0u);
}

TEST(DurableTableStore, PersistFailureLagsDurabilityAndFlushRetries) {
  const Dataset base = WidthOps<Key>::make_data(2000, 0xF4);
  const Dataset batch = WidthOps<Key>::make_data(1000, 0xF5);
  const std::filesystem::path dir = fresh_dir("lagging");
  persist::DurableOptions options;
  options.async = false;
  persist::DurableTableStore store(dir, build_table<Key>(base), options);

  {
    fault::ScopedFaultInjection injection;
    fault::arm(fault::Point::kPersistRename, 1);
    // The publish itself must succeed — durability lags, it does not veto.
    const serve::IngestStats stats = store.ingest(batch);
    EXPECT_EQ(stats.published_version, 2u);
    EXPECT_EQ(store.version(), 2u);
    EXPECT_EQ(store.last_durable_version(), 1u);
    EXPECT_EQ(store.persist_stats().failures, 1u);
    EXPECT_FALSE(store.persist_stats().last_error.empty());
    // Armed points fire exactly once (on the k-th hit), so flush() retrying
    // the persist inline succeeds — durability catches up to the publish.
    EXPECT_TRUE(store.flush());
  }
  EXPECT_EQ(store.last_durable_version(), 2u);
  EXPECT_EQ(store.persist_stats().failures, 1u);
}

TEST(DurableTableStore, AsyncPersistCoalescesUnderBurst) {
  const Dataset base = WidthOps<Key>::make_data(2000, 0xF6);
  const Dataset batch = WidthOps<Key>::make_data(500, 0xF7);
  const std::filesystem::path dir = fresh_dir("coalesce");
  persist::DurableTableStore store(dir, build_table<Key>(base));

  constexpr int kBursts = 12;
  for (int i = 0; i < kBursts; ++i) (void)store.ingest(batch);
  EXPECT_TRUE(store.flush());
  EXPECT_EQ(store.last_durable_version(),
            static_cast<std::uint64_t>(kBursts) + 1);

  const persist::PersistStats stats = store.persist_stats();
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_GE(stats.persisted, 2u);  // at least v1 and the final version
  // Every request is either persisted, coalesced into a newer one, or
  // superseded before its turn — never silently lost.
  EXPECT_LE(stats.persisted + stats.coalesced, stats.requested);
  // Reopen lands on the final version even though intermediates were skipped.
  persist::DurableOptions sync_options;
  sync_options.async = false;
  auto reopened = persist::DurableTableStore::open(dir, sync_options);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->version(), static_cast<std::uint64_t>(kBursts) + 1);
  expect_tables_identical(store.current()->table(),
                          reopened->current()->table());
}

}  // namespace
}  // namespace wfbn
