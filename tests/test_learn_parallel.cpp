// Tests for the re-platformed learner layer: KeyTraits-templated learners
// (narrow/wide parity), the parallel CI scheduler (P=1 ≡ P=8 bit-identity),
// the marginal-reuse cache (on/off bit-identity, hits observed), cooperative
// cancellation, and ServeEngine::learn_structure against a live store.
#include <gtest/gtest.h>

#include <atomic>
#include <utility>
#include <vector>

#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "learn/cheng.hpp"
#include "learn/chow_liu.hpp"
#include "learn/ci_scheduler.hpp"
#include "learn/independence.hpp"
#include "learn/pc_stable.hpp"
#include "learn/score.hpp"
#include "serve/serve_engine.hpp"
#include "serve/table_store.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

using EdgeList = std::vector<std::pair<std::size_t, std::size_t>>;

EdgeList undirected_edges(const UndirectedGraph& graph) {
  EdgeList out;
  for (const Edge& e : graph.edges()) out.emplace_back(e.from, e.to);
  return out;
}

EdgeList directed_edges(const Dag& dag) {
  EdgeList out;
  for (const Edge& e : dag.edges()) out.emplace_back(e.from, e.to);
  return out;
}

Dataset chain_data() { return generate_chain_correlated(20000, 7, 2, 0.8, 91); }

template <typename K>
BasicPotentialTable<K> build_table(const Dataset& data) {
  WaitFreeBuilderOptions options;
  options.threads = 4;
  BasicWaitFreeBuilder<K> builder(options);
  return builder.build(data);
}

// ---------------------------------------------------------------------------
// Narrow/wide parity: the same dataset through both key widths must produce
// identical structures — the templated learners share one implementation.

TEST(LearnParity, ChengNarrowAndWideAgreeExactly) {
  const Dataset data = chain_data();
  ChengOptions options;
  options.ci.threads = 4;
  const ChengResult narrow =
      ChengLearner(options).learn(build_table<Key>(data));
  const ChengResult wide =
      WideChengLearner(options).learn(build_table<WideKey>(data));
  EXPECT_EQ(undirected_edges(narrow.skeleton), undirected_edges(wide.skeleton));
  EXPECT_EQ(directed_edges(narrow.oriented), directed_edges(wide.oriented));
  EXPECT_EQ(narrow.sepsets, wide.sepsets);
  EXPECT_EQ(narrow.ci_tests, wide.ci_tests);
}

TEST(LearnParity, PcStableNarrowAndWideAgreeExactly) {
  const Dataset data = chain_data();
  PcStableOptions options;
  options.ci.threads = 4;
  options.max_level = 2;
  const PcStableResult narrow =
      PcStableLearner(options).learn(build_table<Key>(data));
  const PcStableResult wide =
      WidePcStableLearner(options).learn(build_table<WideKey>(data));
  EXPECT_EQ(undirected_edges(narrow.skeleton), undirected_edges(wide.skeleton));
  EXPECT_EQ(directed_edges(narrow.oriented), directed_edges(wide.oriented));
  EXPECT_EQ(narrow.sepsets, wide.sepsets);
  EXPECT_EQ(narrow.ci_tests, wide.ci_tests);
}

TEST(LearnParity, ChowLiuNarrowAndWideAgreeExactly) {
  const Dataset data = chain_data();
  ThreadPool pool(4);
  const ChowLiuResult narrow = chow_liu_learn(build_table<Key>(data), pool);
  const ChowLiuResult wide = chow_liu_learn(build_table<WideKey>(data), pool);
  EXPECT_EQ(undirected_edges(narrow.tree), undirected_edges(wide.tree));
  EXPECT_EQ(directed_edges(narrow.rooted), directed_edges(wide.rooted));
  EXPECT_EQ(narrow.total_mi, wide.total_mi);  // bit-identical, same sweeps
}

TEST(LearnParity, HillClimbSparseNarrowAndWideAgreeExactly) {
  const Dataset data = generate_chain_correlated(8000, 5, 2, 0.8, 92);
  HillClimbOptions options;
  options.threads = 2;
  const HillClimbResult narrow = hill_climb_sparse(data, 3, options);
  const HillClimbResult wide = hill_climb_sparse<WideKey>(data, 3, options);
  EXPECT_EQ(directed_edges(narrow.dag), directed_edges(wide.dag));
  EXPECT_EQ(narrow.score, wide.score);
}

// ---------------------------------------------------------------------------
// Scheduler determinism: the frozen-phase collect-then-apply structure means
// one worker and many workers walk byte-identical decision sequences.

TEST(LearnScheduling, ChengIsBitIdenticalAcrossPoolWidths) {
  const Dataset data = chain_data();
  const PotentialTable table = build_table<Key>(data);
  ChengOptions p1;
  p1.ci.threads = 1;
  ChengOptions p8 = p1;
  p8.ci.threads = 8;
  const ChengResult serial = ChengLearner(p1).learn(table);
  const ChengResult parallel = ChengLearner(p8).learn(table);
  EXPECT_EQ(undirected_edges(serial.skeleton),
            undirected_edges(parallel.skeleton));
  EXPECT_EQ(directed_edges(serial.oriented), directed_edges(parallel.oriented));
  EXPECT_EQ(serial.sepsets, parallel.sepsets);
  EXPECT_EQ(serial.ci_tests, parallel.ci_tests);
  EXPECT_EQ(serial.draft_edge_count, parallel.draft_edge_count);
  EXPECT_EQ(serial.thickening_added, parallel.thickening_added);
  EXPECT_EQ(serial.thinning_removed, parallel.thinning_removed);
}

TEST(LearnScheduling, PcStableIsBitIdenticalAcrossPoolWidths) {
  const Dataset data = chain_data();
  const PotentialTable table = build_table<Key>(data);
  PcStableOptions p1;
  p1.ci.threads = 1;
  p1.max_level = 2;
  PcStableOptions p8 = p1;
  p8.ci.threads = 8;
  const PcStableResult serial = PcStableLearner(p1).learn(table);
  const PcStableResult parallel = PcStableLearner(p8).learn(table);
  EXPECT_EQ(undirected_edges(serial.skeleton),
            undirected_edges(parallel.skeleton));
  EXPECT_EQ(directed_edges(serial.oriented), directed_edges(parallel.oriented));
  EXPECT_EQ(serial.sepsets, parallel.sepsets);
  EXPECT_EQ(serial.ci_tests, parallel.ci_tests);
}

TEST(LearnScheduling, BorrowedPoolMatchesOwnedPool) {
  const Dataset data = chain_data();
  const PotentialTable table = build_table<Key>(data);
  ChengOptions options;
  options.ci.threads = 4;
  const ChengResult owned = ChengLearner(options).learn(table);
  ThreadPool pool(4);
  const ChengResult borrowed = ChengLearner(options, pool).learn(table);
  EXPECT_EQ(undirected_edges(owned.skeleton),
            undirected_edges(borrowed.skeleton));
  EXPECT_EQ(directed_edges(owned.oriented), directed_edges(borrowed.oriented));
  EXPECT_EQ(owned.sepsets, borrowed.sepsets);
  // The borrowed pool actually carried scheduled batches.
  EXPECT_GT(borrowed.schedule.batches, 0u);
  EXPECT_GT(borrowed.schedule.work_items, 0u);
}

TEST(LearnScheduling, SchedulerRunAnswersEveryTaskInSlotOrder) {
  const Dataset data = chain_data();
  const PotentialTable table = build_table<Key>(data);
  CiOptions ci;
  const CiTester tester(table, ci);
  ThreadPool pool(4);
  CiScheduler scheduler(pool);
  std::vector<CiTask> tasks;
  for (std::size_t x = 0; x + 1 < 7; ++x) {
    tasks.push_back(CiTask{x, x + 1, {}});
    if (x + 2 < 7) tasks.push_back(CiTask{x, x + 2, {x + 1}});
  }
  const std::vector<CiDecision> decisions = scheduler.run(tester, tasks);
  ASSERT_EQ(decisions.size(), tasks.size());
  const CiTester reference(table, ci);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const CiDecision expect = reference.test(tasks[i].x, tasks[i].y, tasks[i].z);
    EXPECT_EQ(decisions[i].independent, expect.independent) << "task " << i;
    EXPECT_EQ(decisions[i].statistic, expect.statistic) << "task " << i;
  }
  EXPECT_EQ(scheduler.stats().work_items, tasks.size());
  EXPECT_EQ(scheduler.stats().batches, 1u);
}

// ---------------------------------------------------------------------------
// Marginal-reuse cache: hit/miss accounting and bit-identity on vs off.

TEST(MarginalReuse, CacheOnAndOffAreBitIdentical) {
  const Dataset data = chain_data();
  const PotentialTable table = build_table<Key>(data);
  ChengOptions on;
  on.ci.threads = 4;
  on.ci.reuse_marginals = true;
  ChengOptions off = on;
  off.ci.reuse_marginals = false;
  const ChengResult with_cache = ChengLearner(on).learn(table);
  const ChengResult without_cache = ChengLearner(off).learn(table);
  EXPECT_EQ(undirected_edges(with_cache.skeleton),
            undirected_edges(without_cache.skeleton));
  EXPECT_EQ(directed_edges(with_cache.oriented),
            directed_edges(without_cache.oriented));
  EXPECT_EQ(with_cache.sepsets, without_cache.sepsets);
  EXPECT_EQ(with_cache.ci_tests, without_cache.ci_tests);
  EXPECT_EQ(without_cache.schedule.cache_hits, 0u);
  EXPECT_EQ(without_cache.schedule.cache_misses, 0u);
}

TEST(MarginalReuse, TesterStatisticsAreBitIdenticalAcrossCacheModes) {
  const Dataset data = chain_data();
  const PotentialTable table = build_table<Key>(data);
  CiOptions on;
  on.reuse_marginals = true;
  CiOptions off;
  off.reuse_marginals = false;
  const CiTester cached(table, on);
  const CiTester uncached(table, off);
  const std::vector<std::size_t> z{2};
  // Twice through the cached tester: miss then hit, same bits every time.
  const CiDecision first = cached.test(1, 3, z);
  const CiDecision second = cached.test(1, 3, z);
  const CiDecision reference = uncached.test(1, 3, z);
  EXPECT_EQ(first.statistic, second.statistic);
  EXPECT_EQ(first.statistic, reference.statistic);
  EXPECT_EQ(first.independent, reference.independent);
  ASSERT_NE(cached.cache(), nullptr);
  EXPECT_EQ(cached.cache()->stats().hits, 1u);
  EXPECT_EQ(uncached.cache(), nullptr);
}

TEST(MarginalReuse, SymmetricTestsShareOneMarginalization) {
  const Dataset data = chain_data();
  const PotentialTable table = build_table<Key>(data);
  const CiTester tester(table, CiOptions{});
  (void)tester.test(1, 2, {});
  (void)tester.test(2, 1, {});  // canonical {1,2} — must hit
  EXPECT_EQ(tester.cache()->stats().misses, 1u);
  EXPECT_EQ(tester.cache()->stats().hits, 1u);
}

TEST(MarginalReuse, PcStableLevelsReuseMarginalsAcrossDirections) {
  const Dataset data = chain_data();
  const PotentialTable table = build_table<Key>(data);
  PcStableOptions options;
  options.ci.threads = 4;
  options.max_level = 2;
  const PcStableResult result = PcStableLearner(options).learn(table);
  // Level 0 alone tests both directions of every pair over the same
  // canonical {x, y} marginal, so reuse is guaranteed.
  EXPECT_GT(result.schedule.cache_hits, 0u);
  EXPECT_GT(result.schedule.cache_misses, 0u);
}

// ---------------------------------------------------------------------------
// Cancellation: a set token aborts with OperationCancelled, never a torn
// result.

TEST(LearnCancellation, PreSetTokenCancelsChengCleanly) {
  const Dataset data = chain_data();
  const PotentialTable table = build_table<Key>(data);
  std::atomic<bool> cancel{true};
  ChengOptions options;
  options.ci.threads = 4;
  options.ci.cancel = &cancel;
  EXPECT_THROW((void)ChengLearner(options).learn(table), OperationCancelled);
}

TEST(LearnCancellation, PreSetTokenCancelsPcStableCleanly) {
  const Dataset data = chain_data();
  const PotentialTable table = build_table<Key>(data);
  std::atomic<bool> cancel{true};
  PcStableOptions options;
  options.ci.threads = 2;
  options.ci.cancel = &cancel;
  EXPECT_THROW((void)PcStableLearner(options).learn(table),
               OperationCancelled);
}

// ---------------------------------------------------------------------------
// Serving: learn_structure pins one snapshot version and keeps serving.

TEST(ServeLearn, LearnStructureAnswersFromPinnedVersion) {
  const Dataset data = chain_data();
  serve::TableStore store(build_table<Key>(data));
  serve::ServeEngine engine(store);
  serve::LearnRequest request;
  request.algorithm = serve::LearnAlgorithm::kCheng;
  request.threads = 4;
  const serve::LearnedStructure learned = engine.learn_structure(request);
  EXPECT_EQ(learned.version, store.version());
  EXPECT_EQ(learned.nodes, 7u);
  EXPECT_FALSE(learned.skeleton_edges.empty());
  EXPECT_FALSE(learned.directed_edges.empty());
  EXPECT_GT(learned.ci_tests, 0u);
  // Direct learner on the same table must agree exactly.
  ChengOptions options;
  options.ci.threads = 4;
  const ChengResult direct = ChengLearner(options).learn(build_table<Key>(data));
  ASSERT_EQ(learned.skeleton_edges.size(),
            undirected_edges(direct.skeleton).size());
  ASSERT_EQ(learned.directed_edges.size(),
            directed_edges(direct.oriented).size());
}

TEST(ServeLearn, EveryAlgorithmServesAndStampsVersion) {
  const Dataset data = chain_data();
  serve::TableStore store(build_table<Key>(data));
  serve::ServeEngine engine(store);
  for (const serve::LearnAlgorithm algorithm :
       {serve::LearnAlgorithm::kCheng, serve::LearnAlgorithm::kPcStable,
        serve::LearnAlgorithm::kChowLiu}) {
    serve::LearnRequest request;
    request.algorithm = algorithm;
    request.threads = 2;
    const serve::LearnedStructure learned = engine.learn_structure(request);
    EXPECT_EQ(learned.version, store.version());
    EXPECT_EQ(learned.nodes, 7u);
    EXPECT_FALSE(learned.skeleton_edges.empty());
  }
}

TEST(ServeLearn, CancelledJobThrowsOperationCancelled) {
  const Dataset data = chain_data();
  serve::TableStore store(build_table<Key>(data));
  serve::ServeEngine engine(store);
  std::atomic<bool> cancel{true};
  serve::LearnRequest request;
  request.cancel = &cancel;
  EXPECT_THROW((void)engine.learn_structure(request), OperationCancelled);
}

TEST(ServeLearn, WideEngineLearnsTheSameStructure) {
  const Dataset data = chain_data();
  serve::BasicTableStore<WideKey> store(build_table<WideKey>(data));
  serve::WideServeEngine engine(store);
  serve::LearnRequest request;
  request.threads = 2;
  const serve::LearnedStructure wide = engine.learn_structure(request);

  serve::TableStore narrow_store(build_table<Key>(data));
  serve::ServeEngine narrow_engine(narrow_store);
  const serve::LearnedStructure narrow = narrow_engine.learn_structure(request);
  EXPECT_EQ(wide.skeleton_edges, narrow.skeleton_edges);
  EXPECT_EQ(wide.directed_edges, narrow.directed_edges);
  EXPECT_EQ(wide.ci_tests, narrow.ci_tests);
}

}  // namespace
}  // namespace wfbn
