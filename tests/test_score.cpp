// Tests for BIC family scoring and sparse-candidate hill climbing (the
// score-based paradigm of paper §III).
#include <gtest/gtest.h>

#include <cmath>

#include "bn/metrics.hpp"
#include "bn/repository.hpp"
#include "bn/sampling.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "learn/score.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

PotentialTable build(const Dataset& data) {
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  return builder.build(data);
}

TEST(FamilyScorer, RootScoreMatchesHandComputation) {
  // 10 rows of a binary variable: 4 zeros, 6 ones.
  std::vector<State> cells = {0, 0, 0, 0, 1, 1, 1, 1, 1, 1};
  const Dataset data(10, {2}, std::move(cells));
  const PotentialTable table = build(data);
  const FamilyScorer scorer(table);
  const double expected_ll = 4 * std::log(0.4) + 6 * std::log(0.6);
  const double expected = expected_ll - 0.5 * std::log(10.0) * 1.0;  // r−1 = 1
  EXPECT_NEAR(scorer.family_score(0, {}), expected, 1e-12);
}

TEST(FamilyScorer, ParentImprovesScoreOfDependentChild) {
  const Dataset data = generate_chain_correlated(50000, 2, 2, 0.9, 501);
  const PotentialTable table = build(data);
  const FamilyScorer scorer(table);
  EXPECT_GT(scorer.family_score(1, {0}), scorer.family_score(1, {}));
}

TEST(FamilyScorer, ParentHurtsScoreOfIndependentChild) {
  // BIC penalty must reject a useless parent.
  const Dataset data = generate_uniform(50000, 2, 2, 502);
  const PotentialTable table = build(data);
  const FamilyScorer scorer(table);
  EXPECT_LT(scorer.family_score(1, {0}), scorer.family_score(1, {}));
}

TEST(FamilyScorer, CacheAvoidsRecomputation) {
  const Dataset data = generate_uniform(5000, 4, 2, 503);
  const PotentialTable table = build(data);
  const FamilyScorer scorer(table, 2);
  const double first = scorer.family_score(2, {0, 3});
  const double second = scorer.family_score(2, {3, 0});  // same set, reordered
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_EQ(scorer.families_evaluated(), 1u);
  EXPECT_EQ(scorer.cache_hits(), 1u);
}

TEST(FamilyScorer, TotalScoreDecomposes) {
  const Dataset data = generate_chain_correlated(20000, 4, 2, 0.8, 504);
  const PotentialTable table = build(data);
  const FamilyScorer scorer(table, 2);
  Dag chain(4);
  chain.add_edge(0, 1);
  chain.add_edge(1, 2);
  chain.add_edge(2, 3);
  double manual = scorer.family_score(0, {});
  manual += scorer.family_score(1, {0});
  manual += scorer.family_score(2, {1});
  manual += scorer.family_score(3, {2});
  EXPECT_NEAR(scorer.total_score(chain), manual, 1e-9);
}

TEST(FamilyScorer, TrueStructureOutscoresAlternatives) {
  const BayesianNetwork truth = load_network(RepositoryNetwork::kCancer);
  const Dataset data = forward_sample(truth, 150000, 505, 4);
  const PotentialTable table = build(data);
  const FamilyScorer scorer(table, 4);

  const double true_score = scorer.total_score(truth.dag());
  EXPECT_GT(true_score, scorer.total_score(Dag(5)));  // vs empty
  Dag wrong(5);  // a chain unrelated to the truth
  wrong.add_edge(0, 3);
  wrong.add_edge(3, 1);
  wrong.add_edge(1, 4);
  wrong.add_edge(4, 2);
  EXPECT_GT(true_score, scorer.total_score(wrong));
}

TEST(FamilyScorer, ValidatesArguments) {
  const Dataset data = generate_uniform(1000, 3, 2, 506);
  const PotentialTable table = build(data);
  const FamilyScorer scorer(table);
  EXPECT_THROW((void)scorer.family_score(0, {0}), PreconditionError);   // self
  EXPECT_THROW((void)scorer.family_score(0, {1, 1}), PreconditionError);
  EXPECT_THROW((void)scorer.family_score(9, {}), PreconditionError);
}

TEST(HillClimb, RecoversChainSkeleton) {
  const Dataset data = generate_chain_correlated(60000, 6, 2, 0.85, 507);
  const PotentialTable table = build(data);
  HillClimbOptions options;
  options.threads = 4;
  const HillClimbResult result = hill_climb(table, options);
  UndirectedGraph expected(6);
  for (NodeId v = 0; v + 1 < 6; ++v) expected.add_edge(v, v + 1);
  const SkeletonMetrics m = compare_skeletons(result.dag.skeleton(), expected);
  EXPECT_DOUBLE_EQ(m.f1, 1.0) << "precision=" << m.precision
                              << " recall=" << m.recall;
  EXPECT_GT(result.moves, 0u);
}

TEST(HillClimb, EmptyGraphOnIndependentData) {
  const Dataset data = generate_uniform(30000, 6, 2, 508);
  const PotentialTable table = build(data);
  const HillClimbResult result = hill_climb(table, HillClimbOptions{});
  EXPECT_EQ(result.dag.edge_count(), 0u);
  EXPECT_EQ(result.moves, 0u);
}

TEST(HillClimb, ScoreNeverDecreasesAndBeatsEmpty) {
  const BayesianNetwork truth = load_network(RepositoryNetwork::kSurvey);
  const Dataset data = forward_sample(truth, 80000, 509, 4);
  const PotentialTable table = build(data);
  HillClimbOptions options;
  options.threads = 4;
  const HillClimbResult result = hill_climb(table, options);
  const FamilyScorer scorer(table, 4);
  EXPECT_GT(result.score, scorer.total_score(Dag(truth.node_count())));
  EXPECT_NEAR(result.score, scorer.total_score(result.dag), 1e-9);
}

TEST(HillClimb, SparseCandidatesPruneWithoutQualityLoss) {
  const BayesianNetwork truth = load_network(RepositoryNetwork::kCancer);
  const Dataset data = forward_sample(truth, 120000, 510, 4);

  HillClimbOptions unpruned;
  unpruned.threads = 4;
  const PotentialTable table = build(data);
  const HillClimbResult full = hill_climb(table, unpruned);

  HillClimbOptions pruned_options;
  pruned_options.threads = 4;
  const HillClimbResult pruned = hill_climb_sparse(data, 3, pruned_options);

  // Pruning evaluates fewer families but lands on an equally good skeleton.
  EXPECT_LE(pruned.families_evaluated, full.families_evaluated);
  const SkeletonMetrics m_full =
      compare_skeletons(full.dag.skeleton(), truth.dag().skeleton());
  const SkeletonMetrics m_pruned =
      compare_skeletons(pruned.dag.skeleton(), truth.dag().skeleton());
  EXPECT_GE(m_pruned.f1, m_full.f1 - 0.05);
  EXPECT_GE(m_pruned.f1, 0.8);
}

TEST(HillClimb, MaxParentsIsRespected) {
  // Star data: many variables copy variable 0.
  Dag star(5);
  for (NodeId v = 1; v < 5; ++v) star.add_edge(0, v);
  BayesianNetwork bn(std::move(star), std::vector<std::uint32_t>(5, 2));
  bn.randomize_cpts(511, 0.3);
  const Dataset data = forward_sample(bn, 50000, 512, 2);
  const PotentialTable table = build(data);
  HillClimbOptions options;
  options.threads = 2;
  options.max_parents = 1;
  const HillClimbResult result = hill_climb(table, options);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_LE(result.dag.parents(v).size(), 1u);
  }
}

TEST(HillClimb, AgreesWithChengOnChain) {
  const Dataset data = generate_chain_correlated(60000, 5, 2, 0.8, 513);
  const PotentialTable table = build(data);
  const HillClimbResult hc = hill_climb(table, HillClimbOptions{});
  UndirectedGraph expected(5);
  for (NodeId v = 0; v + 1 < 5; ++v) expected.add_edge(v, v + 1);
  EXPECT_EQ(hc.dag.skeleton().edges(), expected.edges());
}

}  // namespace
}  // namespace wfbn
