// Tests for exact inference by variable elimination: factor algebra, VE
// against brute-force enumeration, and consistency with the data-driven
// QueryEngine on sampled data.
#include <gtest/gtest.h>

#include <cmath>

#include "bn/inference.hpp"
#include "bn/repository.hpp"
#include "bn/sampling.hpp"
#include "core/wait_free_builder.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

// Brute-force posterior by enumerating every joint assignment.
std::vector<double> enumerate_posterior(const BayesianNetwork& bn,
                                        std::span<const std::size_t> query,
                                        std::span<const Evidence> evidence) {
  std::size_t query_cells = 1;
  for (const std::size_t q : query) query_cells *= bn.cardinality(q);
  std::vector<double> out(query_cells, 0.0);
  double normalizer = 0.0;

  std::vector<State> states(bn.node_count(), 0);
  for (;;) {
    bool consistent = true;
    for (const Evidence& e : evidence) {
      if (states[e.variable] != e.state) consistent = false;
    }
    if (consistent) {
      const double p = bn.joint_probability(states);
      normalizer += p;
      std::size_t cell = 0;
      std::size_t stride = 1;
      for (const std::size_t q : query) {
        cell += states[q] * stride;
        stride *= bn.cardinality(q);
      }
      out[cell] += p;
    }
    // Odometer over all joint assignments.
    std::size_t d = 0;
    while (d < bn.node_count()) {
      if (++states[d] < bn.cardinality(d)) break;
      states[d] = 0;
      ++d;
    }
    if (d == bn.node_count()) break;
  }
  for (double& v : out) v /= normalizer;
  return out;
}

// ------------------------------------------------------------------- factors

TEST(Factor, MultiplyDisjointScopesIsOuterProduct) {
  Factor a({0}, {2});
  a.set_value(0, 0.3);
  a.set_value(1, 0.7);
  Factor b({1}, {3});
  b.set_value(0, 0.2);
  b.set_value(1, 0.5);
  b.set_value(2, 0.3);
  const Factor product = a.multiply(b);
  EXPECT_EQ(product.cell_count(), 6u);
  // Layout: variables (0, 1), first fastest.
  EXPECT_NEAR(product.value_at(0), 0.3 * 0.2, 1e-12);
  EXPECT_NEAR(product.value_at(1), 0.7 * 0.2, 1e-12);
  EXPECT_NEAR(product.value_at(4), 0.3 * 0.3, 1e-12);
}

TEST(Factor, MultiplySharedVariableAlignsCells) {
  Factor a({0, 1}, {2, 2});
  for (std::size_t c = 0; c < 4; ++c) a.set_value(c, static_cast<double>(c + 1));
  Factor b({1}, {2});
  b.set_value(0, 10.0);
  b.set_value(1, 100.0);
  const Factor product = a.multiply(b);
  EXPECT_EQ(product.cell_count(), 4u);
  EXPECT_NEAR(product.value_at(0), 1 * 10.0, 1e-12);   // (0,0)
  EXPECT_NEAR(product.value_at(1), 2 * 10.0, 1e-12);   // (1,0)
  EXPECT_NEAR(product.value_at(2), 3 * 100.0, 1e-12);  // (0,1)
  EXPECT_NEAR(product.value_at(3), 4 * 100.0, 1e-12);  // (1,1)
}

TEST(Factor, SumOutCollapsesOneDimension) {
  Factor f({4, 9}, {2, 3});
  for (std::size_t c = 0; c < 6; ++c) f.set_value(c, static_cast<double>(c));
  const Factor summed = f.sum_out(4);
  ASSERT_EQ(summed.variables(), (std::vector<std::size_t>{9}));
  EXPECT_NEAR(summed.value_at(0), 0 + 1, 1e-12);
  EXPECT_NEAR(summed.value_at(1), 2 + 3, 1e-12);
  EXPECT_NEAR(summed.value_at(2), 4 + 5, 1e-12);
}

TEST(Factor, RestrictSelectsSlice) {
  Factor f({0, 1}, {2, 2});
  for (std::size_t c = 0; c < 4; ++c) f.set_value(c, static_cast<double>(c + 1));
  const Factor restricted = f.restrict_to(0, 1);
  ASSERT_EQ(restricted.variables(), (std::vector<std::size_t>{1}));
  EXPECT_NEAR(restricted.value_at(0), 2.0, 1e-12);  // (x0=1, x1=0)
  EXPECT_NEAR(restricted.value_at(1), 4.0, 1e-12);  // (x0=1, x1=1)
}

TEST(Factor, SumOutToScalar) {
  Factor f({3}, {4});
  for (std::size_t c = 0; c < 4; ++c) f.set_value(c, 0.25);
  const Factor scalar = f.sum_out(3);
  EXPECT_EQ(scalar.cell_count(), 1u);
  EXPECT_NEAR(scalar.value_at(0), 1.0, 1e-12);
}

TEST(Factor, UnknownVariableRejected) {
  Factor f({0}, {2});
  EXPECT_THROW((void)f.sum_out(5), PreconditionError);
  EXPECT_THROW((void)f.restrict_to(5, 0), PreconditionError);
}

// ------------------------------------------------------------------------ VE

class VeAgainstEnumeration : public ::testing::TestWithParam<RepositoryNetwork> {};

TEST_P(VeAgainstEnumeration, PosteriorsMatchBruteForce) {
  const BayesianNetwork bn = load_network(GetParam());
  // Evidence on the last node, query on the first — arbitrary but fixed.
  const std::size_t query[] = {0};
  const Evidence evidence[] = {{bn.node_count() - 1, 0}};
  const std::vector<double> ve = exact_posterior(bn, query, evidence);
  const std::vector<double> brute = enumerate_posterior(bn, query, evidence);
  ASSERT_EQ(ve.size(), brute.size());
  for (std::size_t c = 0; c < ve.size(); ++c) {
    EXPECT_NEAR(ve[c], brute[c], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallNetworks, VeAgainstEnumeration,
                         ::testing::Values(RepositoryNetwork::kAsia,
                                           RepositoryNetwork::kCancer,
                                           RepositoryNetwork::kEarthquake,
                                           RepositoryNetwork::kSurvey,
                                           RepositoryNetwork::kSachs),
                         [](const auto& param_info) {
                           return repository_network_name(param_info.param);
                         });

TEST(VariableElimination, MultiVariableQueryMatchesEnumeration) {
  const BayesianNetwork asia = load_network(RepositoryNetwork::kAsia);
  const NodeId lung = asia.node_by_name("lung");
  const NodeId bronc = asia.node_by_name("bronc");
  const NodeId xray = asia.node_by_name("xray");
  const std::size_t query[] = {lung, bronc};
  const Evidence evidence[] = {{xray, 0}};
  const std::vector<double> ve = exact_posterior(asia, query, evidence);
  const std::vector<double> brute = enumerate_posterior(asia, query, evidence);
  ASSERT_EQ(ve.size(), 4u);
  for (std::size_t c = 0; c < 4; ++c) EXPECT_NEAR(ve[c], brute[c], 1e-10);
  // Posterior normalizes.
  EXPECT_NEAR(ve[0] + ve[1] + ve[2] + ve[3], 1.0, 1e-10);
}

TEST(VariableElimination, NoEvidenceGivesPriorMarginal) {
  const BayesianNetwork eq = load_network(RepositoryNetwork::kEarthquake);
  const std::size_t query[] = {eq.node_by_name("Alarm")};
  const std::vector<double> prior = exact_posterior(eq, query);
  const std::vector<double> brute = enumerate_posterior(eq, query, {});
  EXPECT_NEAR(prior[0], brute[0], 1e-12);
  EXPECT_NEAR(prior[0] + prior[1], 1.0, 1e-12);
}

TEST(VariableElimination, ScalesToAlarm) {
  // 37 nodes — enumeration is infeasible, VE with min-degree must be fast.
  const BayesianNetwork alarm = load_network(RepositoryNetwork::kAlarm);
  const std::size_t query[] = {alarm.node_by_name("BP")};
  const Evidence evidence[] = {{alarm.node_by_name("HRBP"), 0},
                               {alarm.node_by_name("FIO2"), 0}};
  const std::vector<double> posterior = exact_posterior(alarm, query, evidence);
  double total = 0.0;
  for (const double p : posterior) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(VariableElimination, EvidenceProbabilityMatchesEnumeration) {
  const BayesianNetwork cancer = load_network(RepositoryNetwork::kCancer);
  const NodeId smoker = cancer.node_by_name("Smoker");
  const NodeId xray = cancer.node_by_name("Xray");
  const Evidence evidence[] = {{smoker, 0}, {xray, 0}};
  // Brute force P(smoker=yes, xray=pos).
  double expected = 0.0;
  std::vector<State> states(5, 0);
  for (int a = 0; a < 32; ++a) {
    for (std::size_t j = 0; j < 5; ++j) {
      states[j] = static_cast<State>((a >> j) & 1);
    }
    if (states[smoker] == 0 && states[xray] == 0) {
      expected += cancer.joint_probability(states);
    }
  }
  EXPECT_NEAR(exact_evidence_probability(cancer, evidence), expected, 1e-12);
}

TEST(VariableElimination, ImpossibleEvidenceThrows) {
  // ASIA's "either" is a deterministic OR; either=no with lung=yes is
  // impossible.
  const BayesianNetwork asia = load_network(RepositoryNetwork::kAsia);
  const std::size_t query[] = {asia.node_by_name("xray")};
  const Evidence impossible[] = {{asia.node_by_name("lung"), 0},
                                 {asia.node_by_name("either"), 1}};
  EXPECT_THROW((void)exact_posterior(asia, query, impossible), DataError);
}

TEST(VariableElimination, ValidatesArguments) {
  const BayesianNetwork asia = load_network(RepositoryNetwork::kAsia);
  const std::size_t query[] = {0};
  const Evidence on_query[] = {{0, 0}};
  EXPECT_THROW((void)exact_posterior(asia, query, on_query), PreconditionError);
  const std::size_t duplicate[] = {1, 1};
  EXPECT_THROW((void)exact_posterior(asia, duplicate), PreconditionError);
  EXPECT_THROW((void)exact_posterior(asia, {}), PreconditionError);
}

TEST(VariableElimination, AgreesWithDataEstimates) {
  // The end-to-end consistency triangle: network → samples → potential table
  // → QueryEngine estimate ≈ exact VE posterior.
  const BayesianNetwork asia = load_network(RepositoryNetwork::kAsia);
  const Dataset data = forward_sample(asia, 250000, 401, 4);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  const QueryEngine engine(table, 4);

  const NodeId lung = asia.node_by_name("lung");
  const NodeId smoke = asia.node_by_name("smoke");
  const NodeId xray = asia.node_by_name("xray");
  const std::size_t query[] = {lung};
  const Evidence evidence[] = {{smoke, 0}, {xray, 0}};
  const std::vector<double> estimated = engine.conditional(query, evidence);
  const std::vector<double> exact = exact_posterior(asia, query, evidence);
  EXPECT_NEAR(estimated[0], exact[0], 0.02);
  EXPECT_NEAR(estimated[1], exact[1], 0.02);
}

}  // namespace
}  // namespace wfbn
