// Unit + property tests for the mixed-radix key codec (paper Eq. 3/4) and
// the KeyProjector used by the marginalization primitive.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "table/key_codec.hpp"
#include "table/wide_key_codec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace wfbn {
namespace {

TEST(KeyCodec, EncodesPaperExample) {
  // key = sum s_j * r^(j-1) with r = 3: (2, 0, 1) -> 2 + 0*3 + 1*9 = 11.
  const KeyCodec codec = KeyCodec::uniform(3, 3);
  const State states[] = {2, 0, 1};
  EXPECT_EQ(codec.encode(states), 11u);
}

TEST(KeyCodec, DecodeRecoversEachVariable) {
  const KeyCodec codec = KeyCodec::uniform(4, 3);
  const State states[] = {1, 2, 0, 2};
  const Key key = codec.encode(states);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(codec.decode(key, j), states[j]);
}

TEST(KeyCodec, MixedRadixStrides) {
  const KeyCodec codec({2, 3, 4});
  EXPECT_EQ(codec.stride(0), 1u);
  EXPECT_EQ(codec.stride(1), 2u);
  EXPECT_EQ(codec.stride(2), 6u);
  EXPECT_EQ(codec.state_space_size(), 24u);
}

TEST(KeyCodec, EveryKeyRoundTripsInSmallSpace) {
  const KeyCodec codec({2, 3, 2, 4});
  std::vector<State> states(4);
  for (Key key = 0; key < codec.state_space_size(); ++key) {
    codec.decode_all(key, states);
    EXPECT_EQ(codec.encode(states), key);
  }
}

TEST(KeyCodec, RandomStateStringsRoundTrip) {
  Xoshiro256 rng(17);
  const std::vector<std::uint32_t> cards = {2, 5, 3, 2, 7, 4, 2, 3};
  const KeyCodec codec(cards);
  std::vector<State> states(cards.size());
  std::vector<State> decoded(cards.size());
  for (int trial = 0; trial < 2000; ++trial) {
    for (std::size_t j = 0; j < cards.size(); ++j) {
      states[j] = static_cast<State>(rng.bounded(cards[j]));
    }
    const Key key = codec.encode(states);
    codec.decode_all(key, decoded);
    EXPECT_EQ(decoded, states);
    for (std::size_t j = 0; j < cards.size(); ++j) {
      EXPECT_EQ(codec.decode(key, j), states[j]);
    }
  }
}

TEST(KeyCodec, EncodingIsInjective) {
  const KeyCodec codec({3, 2, 3});
  std::vector<bool> seen(codec.state_space_size(), false);
  std::vector<State> states(3);
  for (State a = 0; a < 3; ++a) {
    for (State b = 0; b < 2; ++b) {
      for (State c = 0; c < 3; ++c) {
        states = {a, b, c};
        const Key key = codec.encode(states);
        ASSERT_LT(key, codec.state_space_size());
        EXPECT_FALSE(seen[key]) << "collision at key " << key;
        seen[key] = true;
      }
    }
  }
}

TEST(KeyCodec, PaperScaleFitsSixtyFourBits) {
  // The paper evaluates up to n=50, r=2: 2^50 states must be representable.
  const KeyCodec codec = KeyCodec::uniform(50, 2);
  EXPECT_EQ(codec.state_space_size(), 1ULL << 50);
  std::vector<State> all_ones(50, 1);
  EXPECT_EQ(codec.encode(all_ones), (1ULL << 50) - 1);
}

TEST(KeyCodec, OverflowingStateSpaceThrows) {
  EXPECT_THROW(KeyCodec::uniform(64, 2), DataError);   // 2^64 > 2^63
  EXPECT_THROW(KeyCodec::uniform(41, 3), DataError);   // 3^41 > 2^63
  EXPECT_NO_THROW(KeyCodec::uniform(63, 2));           // 2^63 boundary
}

TEST(KeyCodec, ZeroCardinalityThrows) {
  EXPECT_THROW(KeyCodec({2, 0, 2}), DataError);
}

TEST(KeyCodec, EmptyVariableListThrows) {
  EXPECT_THROW(KeyCodec({}), PreconditionError);
}

TEST(KeyCodec, EncodeCheckedValidates) {
  const KeyCodec codec({2, 3});
  const State bad_state[] = {1, 3};
  EXPECT_THROW((void)codec.encode_checked(bad_state), DataError);
  const State short_string[] = {1};
  EXPECT_THROW((void)codec.encode_checked(short_string), DataError);
  const State good[] = {1, 2};
  EXPECT_EQ(codec.encode_checked(good), codec.encode(good));
}

TEST(KeyProjector, ProjectsSingleVariable) {
  const KeyCodec codec = KeyCodec::uniform(5, 3);
  const State states[] = {0, 2, 1, 0, 2};
  const Key key = codec.encode(states);
  for (std::size_t v = 0; v < 5; ++v) {
    const std::size_t vars[] = {v};
    const KeyProjector projector(codec, vars);
    EXPECT_EQ(projector.project(key), states[v]);
    EXPECT_EQ(projector.range_size(), 3u);
  }
}

TEST(KeyProjector, PairProjectionMatchesManualIndex) {
  const KeyCodec codec({2, 3, 4, 5});
  Xoshiro256 rng(23);
  std::vector<State> states(4);
  for (int trial = 0; trial < 500; ++trial) {
    for (std::size_t j = 0; j < 4; ++j) {
      states[j] = static_cast<State>(rng.bounded(codec.cardinality(j)));
    }
    const Key key = codec.encode(states);
    const std::size_t vars[] = {1, 3};
    const KeyProjector projector(codec, vars);
    EXPECT_EQ(projector.project(key),
              states[1] + 3u * static_cast<std::uint64_t>(states[3]));
  }
}

TEST(KeyProjector, VariableOrderDefinesLayout) {
  const KeyCodec codec = KeyCodec::uniform(3, 2);
  const State states[] = {1, 0, 1};
  const Key key = codec.encode(states);
  const std::size_t fwd[] = {0, 2};
  const std::size_t rev[] = {2, 0};
  EXPECT_EQ(KeyProjector(codec, fwd).project(key), 1u + 2u * 1u);
  EXPECT_EQ(KeyProjector(codec, rev).project(key), 1u + 2u * 1u);
  const State states2[] = {1, 0, 0};
  const Key key2 = codec.encode(states2);
  EXPECT_EQ(KeyProjector(codec, fwd).project(key2), 1u);
  EXPECT_EQ(KeyProjector(codec, rev).project(key2), 2u);
}

TEST(KeyProjector, DuplicateVariableThrows) {
  const KeyCodec codec = KeyCodec::uniform(3, 2);
  const std::size_t vars[] = {1, 1};
  EXPECT_THROW(KeyProjector(codec, vars), PreconditionError);
}

TEST(KeyProjector, OutOfRangeVariableThrows) {
  const KeyCodec codec = KeyCodec::uniform(3, 2);
  const std::size_t vars[] = {3};
  EXPECT_THROW(KeyProjector(codec, vars), PreconditionError);
}

// Property sweep: projecting any subset equals decoding and re-encoding that
// subset, over a grid of codec shapes.
class KeyProjectorProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint32_t>> {};

TEST_P(KeyProjectorProperty, ProjectionEqualsSubsetReencoding) {
  const auto [n, r] = GetParam();
  const KeyCodec codec = KeyCodec::uniform(n, r);
  Xoshiro256 rng(1000 + n * 10 + r);
  std::vector<State> states(n);
  for (int trial = 0; trial < 200; ++trial) {
    for (std::size_t j = 0; j < n; ++j) {
      states[j] = static_cast<State>(rng.bounded(r));
    }
    const Key key = codec.encode(states);
    // Random subset of 1..min(4, n) variables.
    const std::size_t size = 1 + rng.bounded(std::min<std::uint64_t>(4, n));
    std::vector<std::size_t> vars;
    while (vars.size() < size) {
      const std::size_t v = static_cast<std::size_t>(rng.bounded(n));
      if (std::find(vars.begin(), vars.end(), v) == vars.end()) vars.push_back(v);
    }
    const KeyProjector projector(codec, vars);
    std::uint64_t expected = 0;
    std::uint64_t stride = 1;
    for (const std::size_t v : vars) {
      expected += states[v] * stride;
      stride *= r;
    }
    EXPECT_EQ(projector.project(key), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KeyProjectorProperty,
    ::testing::Values(std::make_tuple(std::size_t{1}, 2u),
                      std::make_tuple(std::size_t{2}, 3u),
                      std::make_tuple(std::size_t{8}, 3u),
                      std::make_tuple(std::size_t{30}, 2u),
                      std::make_tuple(std::size_t{30}, 3u),
                      std::make_tuple(std::size_t{39}, 3u),
                      std::make_tuple(std::size_t{50}, 2u)),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_r" +
             std::to_string(std::get<1>(param_info.param));
    });

// ---- encode_block dispatch levels (the SIMD hot path).
//
// Every level must compute bit-identical keys to per-row encode(), at every
// strip shape — including row counts off the kRowTile=32 grid (1, 31, 33)
// and strips large enough to cross many tiles (4097).

constexpr std::size_t kStripSweep[] = {1, 31, 32, 33, 100, 4097};

std::vector<State> random_rows(Xoshiro256& rng,
                               const std::vector<std::uint32_t>& cards,
                               std::size_t rows) {
  std::vector<State> data(rows * cards.size());
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cards.size(); ++j) {
      data[i * cards.size() + j] = static_cast<State>(rng.bounded(cards[j]));
    }
  }
  return data;
}

TEST(KeyCodecBlock, AllDispatchLevelsMatchPerRowEncode) {
  Xoshiro256 rng(99);
  // Mixed radices with multi-byte strides so the AVX2 hi-word multiply runs.
  const std::vector<std::uint32_t> cards = {2, 5, 3, 2, 7, 4, 2,
                                            3, 6, 2, 3, 2, 5, 4};
  const KeyCodec codec(cards);
  const std::size_t n = cards.size();
  for (const std::size_t rows : kStripSweep) {
    const std::vector<State> data = random_rows(rng, cards, rows);
    std::vector<Key> expected(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      expected[i] = codec.encode({data.data() + i * n, n});
    }
    for (const simd::Level level :
         {simd::Level::kScalar, simd::detected()}) {
      std::vector<Key> got(rows, ~0ULL);
      codec.encode_block(data.data(), rows, got.data(), level);
      EXPECT_EQ(got, expected)
          << "rows=" << rows << " level=" << simd::level_name(level);
    }
  }
}

TEST(KeyCodecBlock, ZeroRowStripIsANoOp) {
  const KeyCodec codec = KeyCodec::uniform(8, 3);
  Key sentinel = 12345;
  codec.encode_block(nullptr, 0, &sentinel, simd::detected());
  EXPECT_EQ(sentinel, 12345u);
}

TEST(WideKeyCodecBlock, AllDispatchLevelsMatchPerRowEncode) {
  Xoshiro256 rng(101);
  // 80 binary variables: spills into the hi word, so both accumulator banks
  // and the word-selection path are exercised.
  const std::vector<std::uint32_t> cards(80, 2);
  const WideKeyCodec codec(cards);
  const std::size_t n = cards.size();
  for (const std::size_t rows : kStripSweep) {
    const std::vector<State> data = random_rows(rng, cards, rows);
    std::vector<WideKey> expected(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      expected[i] = codec.encode({data.data() + i * n, n});
    }
    for (const simd::Level level :
         {simd::Level::kScalar, simd::detected()}) {
      std::vector<WideKey> got(rows);
      codec.encode_block(data.data(), rows, got.data(), level);
      EXPECT_EQ(got, expected)
          << "rows=" << rows << " level=" << simd::level_name(level);
    }
  }
}

TEST(KeyCodecBlock, ForcedDowngradeCapsResolutionAtScalar) {
  simd::ScopedForceLevel force(simd::Level::kScalar);
  EXPECT_EQ(simd::detected(), simd::Level::kScalar);
  EXPECT_EQ(simd::resolve(simd::Policy::kAuto), simd::Level::kScalar);
  // An explicit AVX2 request degrades silently instead of erroring.
  EXPECT_EQ(simd::resolve(simd::Policy::kAvx2), simd::Level::kScalar);

  Xoshiro256 rng(7);
  const std::vector<std::uint32_t> cards = {3, 2, 4, 5, 2, 3};
  const KeyCodec codec(cards);
  const std::vector<State> data = random_rows(rng, cards, 65);
  std::vector<Key> scalar(65);
  std::vector<Key> resolved(65);
  codec.encode_block(data.data(), 65, scalar.data(), simd::Level::kScalar);
  codec.encode_block(data.data(), 65, resolved.data(),
                     simd::resolve(simd::Policy::kAvx2));
  EXPECT_EQ(resolved, scalar);
}

}  // namespace
}  // namespace wfbn
