// Tests for the execution substrate: ThreadPool, SpinBarrier, and the two
// shared concurrent maps used by the baseline builders.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <thread>
#include <unordered_map>

#include "concurrent/atomic_hash_map.hpp"
#include "concurrent/barrier.hpp"
#include "concurrent/striped_hash_map.hpp"
#include "concurrent/thread_pool.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wfbn {
namespace {

// ------------------------------------------------------------------ ThreadPool

TEST(ThreadPool, RunsKernelOnEveryWorkerExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(8);
  pool.run([&](std::size_t p) { hits[p].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, IsReusableAcrossRounds) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int round = 0; round < 50; ++round) {
    pool.run([&](std::size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversRangeDisjointly) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(1000);
  pool.parallel_for(0, 1000, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForWithFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.parallel_for(0, 3, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      sum.fetch_add(static_cast<int>(i));
    }
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

TEST(ThreadPool, PropagatesWorkerExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run([](std::size_t p) {
    if (p == 2) throw DataError("worker 2 exploded");
  }),
               DataError);
  // The pool must survive the exception.
  std::atomic<int> counter{0};
  pool.run([&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 4);
}

TEST(ThreadPool, ZeroWorkersIsRejected) {
  EXPECT_THROW(ThreadPool(0), PreconditionError);
}

// Regression: run() must leave no stale error or worker state behind, so a
// pool survives arbitrarily many throwing rounds and each round reports its
// own (fresh) exception, not a leftover from a previous one.
TEST(ThreadPool, StaysUsableAcrossRepeatedThrowingRounds) {
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    const std::string expected = "round " + std::to_string(round);
    try {
      pool.run([&](std::size_t p) {
        if (p == static_cast<std::size_t>(round)) throw DataError(expected);
      });
      FAIL() << "expected DataError in round " << round;
    } catch (const DataError& error) {
      EXPECT_EQ(std::string(error.what()), expected);
    }
    // Interleave a clean round to prove full recovery, not just re-throw.
    std::atomic<int> counter{0};
    pool.run([&](std::size_t) { counter.fetch_add(1); });
    EXPECT_EQ(counter.load(), 4);
  }
}

TEST(ThreadPool, ReportsNoDegradationOnHealthySpawn) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_EQ(pool.degradation().requested_threads, 4u);
  EXPECT_EQ(pool.degradation().spawned_threads, 4u);
  EXPECT_EQ(pool.degradation().failed_spawns, 0u);
  EXPECT_EQ(pool.degradation().pin_failures, 0u);
  EXPECT_FALSE(pool.degradation().degraded());
}

class BlockRangeProperty : public ::testing::TestWithParam<
                               std::tuple<std::size_t, std::size_t>> {};

TEST_P(BlockRangeProperty, PartitionIsCompleteDisjointAndBalanced) {
  const auto [count, parts] = GetParam();
  std::size_t covered = 0;
  std::size_t previous_end = 0;
  std::size_t min_size = count + 1;
  std::size_t max_size = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const auto [lo, hi] = ThreadPool::block_range(count, parts, p);
    EXPECT_EQ(lo, previous_end);  // contiguous, in order
    EXPECT_LE(lo, hi);
    covered += hi - lo;
    previous_end = hi;
    min_size = std::min(min_size, hi - lo);
    max_size = std::max(max_size, hi - lo);
  }
  EXPECT_EQ(covered, count);
  EXPECT_EQ(previous_end, count);
  EXPECT_LE(max_size - min_size, 1u);  // paper's uniform-division assumption
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockRangeProperty,
    ::testing::Combine(::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{7}, std::size_t{64},
                                         std::size_t{1000}, std::size_t{12345}),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{7}, std::size_t{32})),
    [](const auto& param_info) {
      return "count" + std::to_string(std::get<0>(param_info.param)) + "_parts" +
             std::to_string(std::get<1>(param_info.param));
    });

// ------------------------------------------------------------------ SpinBarrier

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr std::size_t kThreads = 4;
  constexpr int kPhases = 200;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> violation{false};
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int phase = 0; phase < kPhases; ++phase) {
        phase_counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, every participant of this phase has arrived.
        if (phase_counter.load() < (phase + 1) * static_cast<int>(kThreads)) {
          violation.store(true);
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(phase_counter.load(), kPhases * static_cast<int>(kThreads));
}

TEST(SpinBarrier, SingleParticipantNeverBlocks) {
  SpinBarrier barrier(1);
  for (int i = 0; i < 1000; ++i) barrier.arrive_and_wait();
  SUCCEED();
}

TEST(SpinBarrier, ZeroParticipantsRejected) {
  EXPECT_THROW(SpinBarrier(0), PreconditionError);
}

// -------------------------------------------------------------- StripedHashMap

TEST(StripedHashMap, SingleThreadedCorrectness) {
  StripedHashMap map(100);
  map.increment(5);
  map.increment(5, 4);
  map.increment(7);
  EXPECT_EQ(map.count(5), 5u);
  EXPECT_EQ(map.count(7), 1u);
  EXPECT_EQ(map.count(8), 0u);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.lock_acquisitions(), 3u);
}

TEST(StripedHashMap, ForEachVisitsAll) {
  StripedHashMap map(64);
  for (std::uint64_t key = 0; key < 500; ++key) map.increment(key, key + 1);
  std::unordered_map<std::uint64_t, std::uint64_t> seen;
  map.for_each([&](std::uint64_t key, std::uint64_t c) { seen[key] = c; });
  EXPECT_EQ(seen.size(), 500u);
  for (std::uint64_t key = 0; key < 500; ++key) EXPECT_EQ(seen[key], key + 1);
}

TEST(StripedHashMap, ConcurrentIncrementsAreLinearizable) {
  StripedHashMap map(1024, 16);
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      Xoshiro256 rng(t);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        map.increment(rng.bounded(256));  // heavy collisions on purpose
      }
    });
  }
  for (auto& t : threads) t.join();
  std::uint64_t total = 0;
  map.for_each([&](std::uint64_t, std::uint64_t c) { total += c; });
  EXPECT_EQ(total, kThreads * kPerThread);
  EXPECT_EQ(map.lock_acquisitions(), kThreads * kPerThread);
}

// --------------------------------------------------------------- AtomicHashMap

TEST(AtomicHashMap, SingleThreadedCorrectness) {
  AtomicHashMap map(100);
  map.increment(3);
  map.increment(3, 9);
  EXPECT_EQ(map.count(3), 10u);
  EXPECT_EQ(map.count(4), 0u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(AtomicHashMap, ReservedKeyRejected) {
  AtomicHashMap map(16);
  EXPECT_THROW(map.increment(AtomicHashMap::kEmptyKey), PreconditionError);
}

TEST(AtomicHashMap, ThrowsWhenFull) {
  AtomicHashMap map(4);  // capacity rounds up, but is finite
  const std::size_t capacity = map.capacity();
  EXPECT_THROW(
      [&] {
        for (std::uint64_t key = 0; key <= capacity; ++key) {
          map.increment(key * 131);
        }
      }(),
      DataError);
}

TEST(AtomicHashMap, ConcurrentIncrementsAreExact) {
  AtomicHashMap map(4096);
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      Xoshiro256 rng(1000 + t);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        map.increment(rng.bounded(512));
      }
    });
  }
  for (auto& t : threads) t.join();
  std::uint64_t total = 0;
  map.for_each([&](std::uint64_t, std::uint64_t c) { total += c; });
  EXPECT_EQ(total, kThreads * kPerThread);
  EXPECT_LE(map.size(), 512u);
}

TEST(AtomicHashMap, ConcurrentDistinctKeyInsertsClaimUniqueSlots) {
  AtomicHashMap map(1 << 15);
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 8000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        map.increment(t * kPerThread + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(map.size(), kThreads * kPerThread);
  for (std::uint64_t key = 0; key < kThreads * kPerThread; ++key) {
    ASSERT_EQ(map.count(key), 1u);
  }
}

}  // namespace
}  // namespace wfbn
