// Tests for CPTs, BayesianNetwork, forward sampling and structure metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "bn/metrics.hpp"
#include "bn/network.hpp"
#include "bn/sampling.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

// ------------------------------------------------------------------------ Cpt

TEST(Cpt, DefaultsToUniform) {
  Cpt cpt(4, {});
  EXPECT_TRUE(cpt.is_normalized());
  for (State s = 0; s < 4; ++s) EXPECT_DOUBLE_EQ(cpt.probability(s, 0), 0.25);
}

TEST(Cpt, ConfigIndexIsMixedRadixFirstParentFastest) {
  Cpt cpt(2, {2, 3});
  const State p00[] = {0, 0};
  const State p10[] = {1, 0};
  const State p01[] = {0, 1};
  const State p12[] = {1, 2};
  EXPECT_EQ(cpt.config_index(p00), 0u);
  EXPECT_EQ(cpt.config_index(p10), 1u);
  EXPECT_EQ(cpt.config_index(p01), 2u);
  EXPECT_EQ(cpt.config_index(p12), 5u);
  EXPECT_EQ(cpt.config_count(), 6u);
}

TEST(Cpt, FromProbabilitiesValidates) {
  EXPECT_NO_THROW(Cpt::from_probabilities(2, {}, {0.3, 0.7}));
  EXPECT_THROW(Cpt::from_probabilities(2, {}, {0.3, 0.6}), DataError);
  EXPECT_THROW(Cpt::from_probabilities(2, {}, {0.3, 0.7, 0.0}), DataError);
  EXPECT_THROW(Cpt::from_probabilities(2, {}, {-0.1, 1.1}), DataError);
}

TEST(Cpt, RandomCptsAreNormalizedAndSeedStable) {
  Xoshiro256 rng_a(5);
  Xoshiro256 rng_b(5);
  const Cpt a = Cpt::random(3, {2, 2}, rng_a, 0.5);
  const Cpt b = Cpt::random(3, {2, 2}, rng_b, 0.5);
  EXPECT_TRUE(a.is_normalized());
  EXPECT_EQ(a.raw(), b.raw());
  Xoshiro256 rng_c(6);
  const Cpt c = Cpt::random(3, {2, 2}, rng_c, 0.5);
  EXPECT_NE(a.raw(), c.raw());
}

TEST(Cpt, SampleFollowsDistribution) {
  const Cpt cpt = Cpt::from_probabilities(3, {}, {0.2, 0.5, 0.3});
  Xoshiro256 rng(8);
  std::vector<int> histogram(3, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++histogram[cpt.sample(0, rng)];
  EXPECT_NEAR(histogram[0] / double(kDraws), 0.2, 0.01);
  EXPECT_NEAR(histogram[1] / double(kDraws), 0.5, 0.01);
  EXPECT_NEAR(histogram[2] / double(kDraws), 0.3, 0.01);
}

TEST(Cpt, SampleRespectsParentConfig) {
  const Cpt cpt = Cpt::from_probabilities(2, {2}, {1.0, 0.0, 0.0, 1.0});
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(cpt.sample(0, rng), 0);
    EXPECT_EQ(cpt.sample(1, rng), 1);
  }
}

// -------------------------------------------------------------- BayesianNetwork

BayesianNetwork tiny_network() {
  Dag dag(3);  // 0 → 2 ← 1
  dag.add_edge(0, 2);
  dag.add_edge(1, 2);
  BayesianNetwork bn(std::move(dag), {2, 2, 2});
  bn.set_cpt(0, Cpt::from_probabilities(2, {}, {0.6, 0.4}));
  bn.set_cpt(1, Cpt::from_probabilities(2, {}, {0.3, 0.7}));
  bn.set_cpt(2, Cpt::from_probabilities(
                    2, {2, 2},
                    {0.9, 0.1, 0.5, 0.5, 0.4, 0.6, 0.05, 0.95}));
  return bn;
}

TEST(BayesianNetwork, JointProbabilityFactorizes) {
  const BayesianNetwork bn = tiny_network();
  const State s[] = {0, 1, 0};
  // P = P(X0=0)·P(X1=1)·P(X2=0 | X0=0, X1=1) = 0.6 · 0.7 · 0.4
  EXPECT_NEAR(bn.joint_probability(s), 0.6 * 0.7 * 0.4, 1e-12);
}

TEST(BayesianNetwork, JointProbabilitySumsToOne) {
  const BayesianNetwork bn = tiny_network();
  double total = 0.0;
  for (State a = 0; a < 2; ++a) {
    for (State b = 0; b < 2; ++b) {
      for (State c = 0; c < 2; ++c) {
        const State s[] = {a, b, c};
        total += bn.joint_probability(s);
      }
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(BayesianNetwork, SetCptRejectsWrongShape) {
  BayesianNetwork bn = tiny_network();
  EXPECT_THROW(bn.set_cpt(0, Cpt(3, {})), DataError);          // wrong r
  EXPECT_THROW(bn.set_cpt(2, Cpt(2, {2})), DataError);         // wrong parents
  EXPECT_THROW(bn.set_cpt(9, Cpt(2, {})), PreconditionError);  // bad node
}

TEST(BayesianNetwork, NamesResolve) {
  const BayesianNetwork bn = tiny_network();
  EXPECT_EQ(bn.name(0), "X0");
  EXPECT_EQ(bn.node_by_name("X2"), 2u);
  EXPECT_THROW((void)bn.node_by_name("nope"), DataError);
}

TEST(BayesianNetwork, ValidateChecksEveryCpt) {
  BayesianNetwork bn = tiny_network();
  EXPECT_TRUE(bn.validate());
}

TEST(BayesianNetwork, RandomizeCptsIsSeedDeterministic) {
  Dag dag(4);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  dag.add_edge(1, 3);
  BayesianNetwork a(dag, {2, 3, 2, 2});
  BayesianNetwork b(dag, {2, 3, 2, 2});
  a.randomize_cpts(123);
  b.randomize_cpts(123);
  EXPECT_TRUE(a.validate());
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(a.cpt(v).raw(), b.cpt(v).raw());
}

// ------------------------------------------------------------ forward sampling

TEST(ForwardSample, MarginalsMatchRootPriors) {
  const BayesianNetwork bn = tiny_network();
  const Dataset data = forward_sample(bn, 100000, 55);
  std::size_t x0_zero = 0;
  std::size_t x1_zero = 0;
  for (std::size_t i = 0; i < data.sample_count(); ++i) {
    x0_zero += data.at(i, 0) == 0;
    x1_zero += data.at(i, 1) == 0;
  }
  EXPECT_NEAR(static_cast<double>(x0_zero) / 100000.0, 0.6, 0.01);
  EXPECT_NEAR(static_cast<double>(x1_zero) / 100000.0, 0.3, 0.01);
}

TEST(ForwardSample, ConditionalFrequenciesMatchCpt) {
  const BayesianNetwork bn = tiny_network();
  const Dataset data = forward_sample(bn, 200000, 56);
  // P(X2=0 | X0=0, X1=0) should be 0.9.
  std::size_t matching_config = 0;
  std::size_t x2_zero = 0;
  for (std::size_t i = 0; i < data.sample_count(); ++i) {
    if (data.at(i, 0) == 0 && data.at(i, 1) == 0) {
      ++matching_config;
      x2_zero += data.at(i, 2) == 0;
    }
  }
  ASSERT_GT(matching_config, 10000u);
  EXPECT_NEAR(static_cast<double>(x2_zero) / static_cast<double>(matching_config),
              0.9, 0.01);
}

TEST(ForwardSample, DeterministicInSeedAndThreads) {
  const BayesianNetwork bn = tiny_network();
  const Dataset a = forward_sample(bn, 5000, 57, 3);
  const Dataset b = forward_sample(bn, 5000, 57, 3);
  EXPECT_TRUE(std::equal(a.raw().begin(), a.raw().end(), b.raw().begin()));
  const Dataset c = forward_sample(bn, 5000, 58, 3);
  EXPECT_FALSE(std::equal(a.raw().begin(), a.raw().end(), c.raw().begin()));
}

TEST(ForwardSample, WorksWithNonTopologicalNodeNumbering) {
  Dag dag(3);  // 2 → 1 → 0: samplers must follow topological order, not ids
  dag.add_edge(2, 1);
  dag.add_edge(1, 0);
  BayesianNetwork bn(std::move(dag), {2, 2, 2});
  bn.set_cpt(2, Cpt::from_probabilities(2, {}, {1.0, 0.0}));
  bn.set_cpt(1, Cpt::from_probabilities(2, {2}, {0.0, 1.0, 1.0, 0.0}));
  bn.set_cpt(0, Cpt::from_probabilities(2, {2}, {0.0, 1.0, 1.0, 0.0}));
  const Dataset data = forward_sample(bn, 100, 59);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(data.at(i, 2), 0);  // deterministic root
    EXPECT_EQ(data.at(i, 1), 1);  // flips parent
    EXPECT_EQ(data.at(i, 0), 0);  // flips again
  }
}

// --------------------------------------------------------------------- metrics

TEST(Metrics, SkeletonComparisonCountsCorrectly) {
  UndirectedGraph learned(4);
  learned.add_edge(0, 1);  // true positive
  learned.add_edge(1, 2);  // true positive
  learned.add_edge(0, 3);  // false positive
  UndirectedGraph truth(4);
  truth.add_edge(0, 1);
  truth.add_edge(1, 2);
  truth.add_edge(2, 3);    // missed
  const SkeletonMetrics m = compare_skeletons(learned, truth);
  EXPECT_EQ(m.true_positives, 2u);
  EXPECT_EQ(m.false_positives, 1u);
  EXPECT_EQ(m.false_negatives, 1u);
  EXPECT_NEAR(m.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.f1, 2.0 / 3.0, 1e-12);
}

TEST(Metrics, PerfectRecoveryScoresOne) {
  UndirectedGraph g(3);
  g.add_edge(0, 1);
  const SkeletonMetrics m = compare_skeletons(g, g);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(Metrics, EmptyGraphsScorePerfect) {
  UndirectedGraph a(3);
  UndirectedGraph b(3);
  const SkeletonMetrics m = compare_skeletons(a, b);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(Metrics, ShdCountsMissingExtraAndReversed) {
  Dag truth(4);
  truth.add_edge(0, 1);
  truth.add_edge(1, 2);
  truth.add_edge(2, 3);
  Dag learned(4);
  learned.add_edge(0, 1);  // exact match: 0
  learned.add_edge(2, 1);  // reversed: 1
  learned.add_edge(0, 3);  // extra: 1, and missing 2→3: 1
  EXPECT_EQ(structural_hamming_distance(learned, truth), 3u);
  EXPECT_EQ(structural_hamming_distance(truth, truth), 0u);
}

TEST(Metrics, MismatchedNodeSetsRejected) {
  UndirectedGraph a(3);
  UndirectedGraph b(4);
  EXPECT_THROW((void)compare_skeletons(a, b), PreconditionError);
}

}  // namespace
}  // namespace wfbn
