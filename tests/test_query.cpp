// Tests for the probability-query engine over potential tables.
#include <gtest/gtest.h>

#include "bn/repository.hpp"
#include "bn/sampling.hpp"
#include "core/query.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

PotentialTable build(const Dataset& data, std::size_t threads = 4) {
  WaitFreeBuilderOptions options;
  options.threads = threads;
  WaitFreeBuilder builder(options);
  return builder.build(data);
}

/// Hand-built dataset over (X0: r=2, X1: r=2) with exact known counts.
Dataset tiny_dataset() {
  // Rows: (0,0)×4, (1,0)×2, (0,1)×1, (1,1)×3 → m = 10.
  std::vector<State> cells;
  auto push = [&](State a, State b, int times) {
    for (int i = 0; i < times; ++i) {
      cells.push_back(a);
      cells.push_back(b);
    }
  };
  push(0, 0, 4);
  push(1, 0, 2);
  push(0, 1, 1);
  push(1, 1, 3);
  return Dataset(10, {2, 2}, std::move(cells));
}

TEST(QueryEngine, MarginalMatchesHandCounts) {
  const PotentialTable table = build(tiny_dataset(), 2);
  const QueryEngine engine(table, 2);
  const std::size_t v0[] = {0};
  const std::vector<double> p0 = engine.marginal(v0);
  EXPECT_NEAR(p0[0], 0.5, 1e-12);  // X0 = 0: 4 + 1 = 5 of 10
  EXPECT_NEAR(p0[1], 0.5, 1e-12);
  const std::size_t v1[] = {1};
  const std::vector<double> p1 = engine.marginal(v1);
  EXPECT_NEAR(p1[0], 0.6, 1e-12);  // X1 = 0: 4 + 2 = 6 of 10
  EXPECT_NEAR(p1[1], 0.4, 1e-12);
}

TEST(QueryEngine, JointMarginalLayout) {
  const PotentialTable table = build(tiny_dataset(), 2);
  const QueryEngine engine(table, 1);
  const std::size_t vars[] = {0, 1};
  const std::vector<double> joint = engine.marginal(vars);
  ASSERT_EQ(joint.size(), 4u);
  EXPECT_NEAR(joint[0], 0.4, 1e-12);  // (0,0)
  EXPECT_NEAR(joint[1], 0.2, 1e-12);  // (1,0)
  EXPECT_NEAR(joint[2], 0.1, 1e-12);  // (0,1)
  EXPECT_NEAR(joint[3], 0.3, 1e-12);  // (1,1)
}

TEST(QueryEngine, ConditionalMatchesBayesRule) {
  const PotentialTable table = build(tiny_dataset(), 2);
  const QueryEngine engine(table, 2);
  const std::size_t vars[] = {0};
  const Evidence e[] = {{1, 0}};  // X1 = 0
  const std::vector<double> p = engine.conditional(vars, e);
  // P(X0=0 | X1=0) = 4/6, P(X0=1 | X1=0) = 2/6.
  EXPECT_NEAR(p[0], 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(p[1], 2.0 / 6.0, 1e-12);
}

TEST(QueryEngine, EvidenceProbability) {
  const PotentialTable table = build(tiny_dataset(), 2);
  const QueryEngine engine(table, 2);
  const Evidence e1[] = {{1, 1}};
  EXPECT_NEAR(engine.evidence_probability(e1), 0.4, 1e-12);
  const Evidence e2[] = {{0, 1}, {1, 1}};
  EXPECT_NEAR(engine.evidence_probability(e2), 0.3, 1e-12);
}

TEST(QueryEngine, MostProbableState) {
  const PotentialTable table = build(tiny_dataset(), 2);
  const QueryEngine engine(table, 2);
  const std::size_t vars[] = {0, 1};
  const QueryEngine::MapResult map = engine.most_probable(vars);
  EXPECT_EQ(map.states, (std::vector<State>{0, 0}));
  EXPECT_NEAR(map.probability, 0.4, 1e-12);
  const Evidence e[] = {{1, 1}};  // given X1 = 1, (1,1) dominates
  const std::size_t v0[] = {0};
  const QueryEngine::MapResult cond = engine.most_probable(v0, e);
  EXPECT_EQ(cond.states, (std::vector<State>{1}));
  EXPECT_NEAR(cond.probability, 0.75, 1e-12);
}

TEST(QueryEngine, BorrowedPoolAndInlinePathsMatchOwnedPool) {
  // The serving layer relies on all three evaluation modes — inline
  // (threads == 1), transient owned pool, and borrowed pool — producing
  // bit-identical distributions.
  const Dataset data = generate_chain_correlated(5000, 8, 2, 0.8, 0x99);
  const PotentialTable table = build(data, 4);
  const QueryEngine inline_engine(table, 1);
  const QueryEngine owned(table, 3);
  ThreadPool pool(3);
  const QueryEngine borrowed(table, pool);

  const std::size_t vars[] = {0, 2};
  const Evidence e[] = {{1, 0}};
  EXPECT_EQ(inline_engine.marginal(vars), owned.marginal(vars));
  EXPECT_EQ(inline_engine.marginal(vars), borrowed.marginal(vars));
  EXPECT_EQ(inline_engine.conditional(vars, e), owned.conditional(vars, e));
  EXPECT_EQ(inline_engine.conditional(vars, e), borrowed.conditional(vars, e));
  // A borrowed pool is reusable across queries and engines.
  EXPECT_EQ(QueryEngine(table, pool).evidence_probability(e),
            inline_engine.evidence_probability(e));
}

TEST(QueryEngine, ZeroSupportEvidenceThrows) {
  // All rows have X0 ∈ {0,1}; evidence on an unobserved *combination*.
  std::vector<State> cells = {0, 0, 0, 0};  // two rows of (0,0)
  const Dataset data(2, {2, 2}, std::move(cells));
  const PotentialTable table = build(data, 1);
  const QueryEngine engine(table, 1);
  const std::size_t vars[] = {0};
  const Evidence impossible[] = {{1, 1}};
  EXPECT_THROW((void)engine.conditional(vars, impossible), DataError);
  EXPECT_DOUBLE_EQ(engine.evidence_probability(impossible), 0.0);
}

TEST(QueryEngine, ValidatesArguments) {
  const PotentialTable table = build(tiny_dataset(), 2);
  const QueryEngine engine(table, 2);
  const std::size_t vars[] = {0};
  const Evidence overlapping[] = {{0, 0}};
  EXPECT_THROW((void)engine.conditional(vars, overlapping), PreconditionError);
  const Evidence bad_var[] = {{7, 0}};
  EXPECT_THROW((void)engine.conditional(vars, bad_var), PreconditionError);
  const Evidence bad_state[] = {{1, 5}};
  EXPECT_THROW((void)engine.conditional(vars, bad_state), PreconditionError);
  EXPECT_THROW(QueryEngine(table, 0), PreconditionError);
}

TEST(QueryEngine, ThreadCountDoesNotChangeAnswers) {
  const Dataset data = generate_chain_correlated(20000, 8, 2, 0.7, 121);
  const PotentialTable table = build(data);
  const std::size_t vars[] = {2, 5};
  const Evidence e[] = {{0, 1}, {7, 0}};
  const std::vector<double> p1 = QueryEngine(table, 1).conditional(vars, e);
  const std::vector<double> p8 = QueryEngine(table, 8).conditional(vars, e);
  ASSERT_EQ(p1.size(), p8.size());
  for (std::size_t c = 0; c < p1.size(); ++c) {
    EXPECT_DOUBLE_EQ(p1[c], p8[c]);
  }
}

TEST(QueryEngine, AgreesWithNetworkPosteriorOnAsia) {
  // Data-estimated P(dysp | smoke=yes) should be close to the analytic value
  // from the generating network (large-sample consistency).
  const BayesianNetwork asia = load_network(RepositoryNetwork::kAsia);
  const Dataset data = forward_sample(asia, 300000, 122, 4);
  const PotentialTable table = build(data);
  const QueryEngine engine(table, 4);

  const NodeId S = asia.node_by_name("smoke");
  const NodeId D = asia.node_by_name("dysp");
  const std::size_t vars[] = {D};
  const Evidence smoke_yes[] = {{S, 0}};
  const std::vector<double> posterior = engine.conditional(vars, smoke_yes);

  // Analytic P(dysp = yes | smoke = yes) by brute-force enumeration.
  double joint_yes = 0.0;
  double evidence = 0.0;
  std::vector<State> states(8);
  for (std::uint32_t assignment = 0; assignment < 256; ++assignment) {
    for (std::size_t j = 0; j < 8; ++j) {
      states[j] = static_cast<State>((assignment >> j) & 1);
    }
    if (states[S] != 0) continue;
    const double p = asia.joint_probability(states);
    evidence += p;
    if (states[D] == 0) joint_yes += p;
  }
  EXPECT_NEAR(posterior[0], joint_yes / evidence, 0.01);
}

}  // namespace
}  // namespace wfbn
