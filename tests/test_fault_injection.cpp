// Deterministic fault-injection sweep over the concurrency layer: every
// registered failure point, under both builder variants, must yield either a
// typed error or a correct (possibly degraded) result — never a crash, a
// hang, or a corrupted table. Also verifies append()'s strong guarantee (a
// mid-append throw leaves the table bit-identical), graceful degradation on
// spawn/pin failure, and the pipelined stall watchdog.
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "concurrent/thread_pool.hpp"
#include "core/all_pairs_mi.hpp"
#include "core/marginalizer.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "learn/cheng.hpp"
#include "serve/persist/format.hpp"
#include "serve/persist/snapshot_reader.hpp"
#include "serve/persist/snapshot_writer.hpp"
#include "serve/snapshot.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace wfbn {
namespace {

std::map<Key, std::uint64_t> reference_counts(const Dataset& data) {
  const KeyCodec codec = data.codec();
  std::map<Key, std::uint64_t> counts;
  for (std::size_t i = 0; i < data.sample_count(); ++i) {
    ++counts[codec.encode(data.row(i))];
  }
  return counts;
}

std::map<Key, std::uint64_t> snapshot(const PotentialTable& table) {
  std::map<Key, std::uint64_t> counts;
  table.partitions().for_each(
      [&](Key key, std::uint64_t c) { counts[key] += c; });
  return counts;
}

void expect_equal_counts(const PotentialTable& table,
                         const std::map<Key, std::uint64_t>& reference) {
  ASSERT_EQ(table.distinct_keys(), reference.size());
  EXPECT_EQ(snapshot(table), reference);
}

// ------------------------------------------------------- failure-point sweep

struct SweepConfig {
  fault::Point point;
  bool pipelined;
  std::uint64_t fire_on;
};

class FaultPointSweep : public ::testing::TestWithParam<SweepConfig> {};

// The oracle every failure point must satisfy: the build either throws a
// typed error or produces the exact reference table. Points that a variant
// never reaches (e.g. the barrier under the pipelined builder) simply never
// fire, which exercises the "correct result" arm.
TEST_P(FaultPointSweep, BuildThrowsTypedErrorOrStaysExact) {
  const SweepConfig config = GetParam();
  const Dataset data = generate_uniform(12000, 10, 2, 42);
  const auto reference = reference_counts(data);

  fault::ScopedFaultInjection injection;
  fault::arm(config.point, config.fire_on);

  WaitFreeBuilderOptions options;
  options.threads = 4;
  options.pipelined = config.pipelined;
  // Armed so that even an unexpected wedge surfaces as StallError, not a hang.
  options.stall_timeout_seconds = 5.0;
  WaitFreeBuilder builder(options);
  try {
    const PotentialTable table = builder.build(data);
    ASSERT_TRUE(table.validate());
    expect_equal_counts(table, reference);
  } catch (const InjectedFault&) {
    EXPECT_GE(fault::hits(config.point), config.fire_on);
  } catch (const StallError&) {
    // Acceptable: an injected fault can wedge a round; the watchdog's typed
    // error is exactly the defined behavior.
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPoints, FaultPointSweep,
    ::testing::Values(
        SweepConfig{fault::Point::kThreadSpawn, false, 2},
        SweepConfig{fault::Point::kThreadSpawn, true, 2},
        SweepConfig{fault::Point::kPinThread, false, 1},
        SweepConfig{fault::Point::kPinThread, true, 1},
        SweepConfig{fault::Point::kSpscChunkAlloc, false, 1},
        SweepConfig{fault::Point::kSpscChunkAlloc, true, 1},
        SweepConfig{fault::Point::kStage1Row, false, 1},
        SweepConfig{fault::Point::kStage1Row, false, 5000},
        SweepConfig{fault::Point::kStage1Row, true, 1},
        SweepConfig{fault::Point::kStage1Row, true, 5000},
        SweepConfig{fault::Point::kBarrier, false, 1},
        SweepConfig{fault::Point::kBarrier, false, 3},
        SweepConfig{fault::Point::kBarrier, true, 1},
        SweepConfig{fault::Point::kStage2Drain, false, 1},
        SweepConfig{fault::Point::kStage2Drain, false, 500},
        SweepConfig{fault::Point::kStage2Drain, true, 1},
        SweepConfig{fault::Point::kPipelineDrain, false, 1},
        SweepConfig{fault::Point::kPipelineDrain, true, 1},
        SweepConfig{fault::Point::kPipelineDrain, true, 4},
        SweepConfig{fault::Point::kAppendCommit, false, 1},
        SweepConfig{fault::Point::kAppendCommit, true, 1}),
    [](const auto& p) {
      std::string name;
      for (const char c : std::string(fault::point_name(p.param.point))) {
        if (std::isalnum(static_cast<unsigned char>(c))) name += c;
      }
      return name + (p.param.pipelined ? "Pipelined" : "Phased") + "Hit" +
             std::to_string(p.param.fire_on);
    });

// The downstream primitives honor the same oracle.
TEST(FaultInjection, MarginalizeThrowsTypedErrorOrStaysExact) {
  const Dataset data = generate_uniform(8000, 8, 3, 7);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  const PotentialTable table = WaitFreeBuilder(options).build(data);
  const std::size_t vars[] = {1, 4};
  const Marginalizer marginalizer(4);
  const MarginalTable expected = table.marginalize_sequential(vars);

  for (const std::uint64_t fire_on : {1ull, 2ull, 4ull}) {
    fault::ScopedFaultInjection injection;
    fault::arm(fault::Point::kMarginalizeSweep, fire_on);
    try {
      const MarginalTable marginal = marginalizer.marginalize(table, vars);
      ASSERT_EQ(marginal.total(), expected.total());
      for (std::uint64_t cell = 0; cell < expected.cell_count(); ++cell) {
        ASSERT_EQ(marginal.count_at(cell), expected.count_at(cell));
      }
    } catch (const InjectedFault&) {
    }
    // The input table survives either way.
    ASSERT_TRUE(table.validate());
  }
}

TEST(FaultInjection, AllPairsMiThrowsTypedErrorOrCompletes) {
  const Dataset data = generate_uniform(5000, 6, 2, 8);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  const PotentialTable table = WaitFreeBuilder(options).build(data);

  for (const AllPairsStrategy strategy :
       {AllPairsStrategy::kPairParallel, AllPairsStrategy::kFused}) {
    fault::ScopedFaultInjection injection;
    fault::arm(fault::Point::kMiSweep, 2);
    AllPairsMi all_pairs(AllPairsOptions{4, strategy});
    try {
      const MiMatrix mi = all_pairs.compute(table);
      for (std::size_t i = 0; i < mi.size(); ++i) {
        for (std::size_t j = 0; j < mi.size(); ++j) {
          ASSERT_GE(mi.at(i, j), 0.0);
        }
      }
    } catch (const InjectedFault&) {
    }
    ASSERT_TRUE(table.validate());
  }
}

// ------------------------------------------------ append: strong guarantee

class AppendStrongGuarantee
    : public ::testing::TestWithParam<std::pair<fault::Point, std::uint64_t>> {
};

TEST_P(AppendStrongGuarantee, MidAppendThrowLeavesTableBitIdentical) {
  const auto [point, fire_on] = GetParam();
  // Two workers concentrate foreign traffic into two queues so even the
  // chunk-allocation point (one hit per 2048 pushes into one queue) fires.
  const Dataset base = generate_uniform(6000, 10, 2, 21);
  const Dataset batch = generate_uniform(12000, 10, 2, 22);
  WaitFreeBuilderOptions options;
  options.threads = 2;
  WaitFreeBuilder builder(options);
  PotentialTable table = builder.build(base);
  const auto before = snapshot(table);
  const std::uint64_t samples_before = table.sample_count();
  const std::size_t distinct_before = table.distinct_keys();

  fault::ScopedFaultInjection injection;
  fault::arm(point, fire_on);
  EXPECT_THROW(builder.append(batch, table), InjectedFault);

  // Bit-identical pre-call state: same keys, same counts, same sample count.
  EXPECT_EQ(table.sample_count(), samples_before);
  EXPECT_EQ(table.distinct_keys(), distinct_before);
  EXPECT_EQ(snapshot(table), before);
  ASSERT_TRUE(table.validate());

  // And the failure is transient: the same append succeeds once the fault
  // schedule is cleared, from exactly the pre-fault state.
  fault::reset();
  builder.append(batch, table);
  std::map<Key, std::uint64_t> combined = reference_counts(base);
  for (const auto& [key, count] : reference_counts(batch)) {
    combined[key] += count;
  }
  EXPECT_EQ(table.sample_count(), samples_before + batch.sample_count());
  expect_equal_counts(table, combined);
}

INSTANTIATE_TEST_SUITE_P(
    Points, AppendStrongGuarantee,
    ::testing::Values(
        std::make_pair(fault::Point::kStage1Row, std::uint64_t{1}),
        std::make_pair(fault::Point::kStage1Row, std::uint64_t{7000}),
        std::make_pair(fault::Point::kSpscChunkAlloc, std::uint64_t{1}),
        std::make_pair(fault::Point::kBarrier, std::uint64_t{1}),
        std::make_pair(fault::Point::kStage2Drain, std::uint64_t{100}),
        std::make_pair(fault::Point::kAppendCommit, std::uint64_t{1})),
    [](const auto& p) {
      std::string name;
      for (const char c : std::string(fault::point_name(p.param.first))) {
        if (std::isalnum(static_cast<unsigned char>(c))) name += c;
      }
      return name + "Hit" + std::to_string(p.param.second);
    });

// ------------------------------------- block-routing flush points

// The write-combining router introduced new flush sites: a full per-
// destination buffer mid-scan, the stage-1-end flush_all before the barrier,
// and the per-batch flush of the pipelined variant. All of them funnel into
// SpscQueue::push_block, whose chunk allocations fire kSpscChunkAlloc — so
// arming that point with routing enabled throws in the middle of a bulk
// flush. A buffer larger than the queue's chunk capacity makes a single
// flush straddle a chunk boundary, forcing the allocation mid-block.
struct FlushConfig {
  std::size_t route_buffer_keys;
  bool pipelined;
  std::uint64_t fire_on;
};

class FlushPointSweep : public ::testing::TestWithParam<FlushConfig> {};

TEST_P(FlushPointSweep, ThrowMidFlushYieldsTypedErrorOrExactBuild) {
  const FlushConfig config = GetParam();
  const Dataset data = generate_uniform(12000, 10, 2, 42);
  const auto reference = reference_counts(data);

  fault::ScopedFaultInjection injection;
  fault::arm(fault::Point::kSpscChunkAlloc, config.fire_on);

  WaitFreeBuilderOptions options;
  // Two workers concentrate ~3000 foreign keys into each of the two live
  // queues, so chunk allocation (one per 2048 pushes) is actually reached.
  options.threads = 2;
  options.pipelined = config.pipelined;
  options.route_buffer_keys = config.route_buffer_keys;
  options.stall_timeout_seconds = 5.0;
  WaitFreeBuilder builder(options);
  try {
    const PotentialTable table = builder.build(data);
    ASSERT_TRUE(table.validate());
    expect_equal_counts(table, reference);
  } catch (const InjectedFault&) {
    EXPECT_GE(fault::hits(fault::Point::kSpscChunkAlloc), config.fire_on);
  } catch (const StallError&) {
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FlushPointSweep,
    ::testing::Values(FlushConfig{64, false, 1}, FlushConfig{64, true, 1},
                      FlushConfig{4096, false, 1}, FlushConfig{4096, true, 1},
                      FlushConfig{4096, false, 2}, FlushConfig{4096, true, 3}),
    [](const auto& p) {
      return "Buffer" + std::to_string(p.param.route_buffer_keys) +
             (p.param.pipelined ? "Pipelined" : "Phased") + "Hit" +
             std::to_string(p.param.fire_on);
    });

TEST(FaultInjection, ThrowMidFlushKeepsAppendStrongGuarantee) {
  // append() stages into scratch partitions, so a bulk flush that throws
  // halfway through push_block (prefix published, remainder dropped) only
  // ever corrupts the scratch — the live table must stay bit-identical.
  const Dataset base = generate_uniform(6000, 10, 2, 24);
  const Dataset batch = generate_uniform(12000, 10, 2, 25);
  WaitFreeBuilderOptions options;
  options.threads = 2;
  options.route_buffer_keys = 4096;  // one flush spans > one 2048-item chunk
  WaitFreeBuilder builder(options);
  PotentialTable table = builder.build(base);
  const auto before = snapshot(table);
  const std::uint64_t samples_before = table.sample_count();

  fault::ScopedFaultInjection injection;
  fault::arm(fault::Point::kSpscChunkAlloc, 1);
  EXPECT_THROW(builder.append(batch, table), InjectedFault);

  EXPECT_EQ(table.sample_count(), samples_before);
  EXPECT_EQ(snapshot(table), before);
  ASSERT_TRUE(table.validate());

  fault::reset();
  builder.append(batch, table);
  std::map<Key, std::uint64_t> combined = reference_counts(base);
  for (const auto& [key, count] : reference_counts(batch)) {
    combined[key] += count;
  }
  expect_equal_counts(table, combined);
}

// ------------------------------------------------- graceful degradation

TEST(FaultInjection, SpawnFailureDegradesToFewerWorkers) {
  const Dataset data = generate_uniform(10000, 10, 2, 31);
  const auto reference = reference_counts(data);

  fault::ScopedFaultInjection injection;
  fault::arm(fault::Point::kThreadSpawn, 3);  // third spawn attempt fails

  WaitFreeBuilderOptions options;
  options.threads = 6;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);

  expect_equal_counts(table, reference);
  ASSERT_TRUE(table.validate());
  const BuildStats& stats = builder.stats();
  EXPECT_EQ(stats.requested_workers, 6u);
  EXPECT_EQ(stats.effective_workers, 2u);
  EXPECT_TRUE(stats.degraded());
}

TEST(FaultInjection, AppendSurvivesDegradedPoolWithFewerWorkersThanPartitions) {
  const Dataset base = generate_uniform(8000, 10, 2, 32);
  const Dataset batch = generate_uniform(8000, 10, 2, 33);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  PotentialTable table = builder.build(base);  // 4 partitions

  fault::ScopedFaultInjection injection;
  fault::arm(fault::Point::kThreadSpawn, 2);  // append pool degrades to 1 worker
  builder.append(batch, table);

  EXPECT_EQ(builder.stats().requested_workers, 4u);
  EXPECT_EQ(builder.stats().effective_workers, 1u);
  EXPECT_TRUE(builder.stats().degraded());
  EXPECT_TRUE(table.partitions().ownership_invariant_holds());

  std::map<Key, std::uint64_t> combined = reference_counts(base);
  for (const auto& [key, count] : reference_counts(batch)) {
    combined[key] += count;
  }
  expect_equal_counts(table, combined);
}

TEST(FaultInjection, FirstSpawnFailureCannotDegradeAndThrows) {
  fault::ScopedFaultInjection injection;
  fault::arm(fault::Point::kThreadSpawn, 1);
  EXPECT_THROW(ThreadPool{4}, InjectedFault);
}

TEST(FaultInjection, PinFailureDegradesToUnpinnedWorkers) {
  const Dataset data = generate_uniform(6000, 8, 2, 34);
  const auto reference = reference_counts(data);

  fault::ScopedFaultInjection injection;
  fault::arm(fault::Point::kPinThread, 2);

  WaitFreeBuilderOptions options;
  options.threads = 4;
  options.pin_threads = true;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);

  expect_equal_counts(table, reference);
  EXPECT_EQ(builder.stats().pin_failures, 1u);
  EXPECT_EQ(builder.stats().effective_workers, 4u);
  EXPECT_TRUE(builder.stats().degraded());
}

TEST(FaultInjection, PoolReportsDegradationAfterInjectedSpawnFailure) {
  fault::ScopedFaultInjection injection;
  fault::arm(fault::Point::kThreadSpawn, 4);
  ThreadPool pool(8);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.degradation().requested_threads, 8u);
  EXPECT_EQ(pool.degradation().spawned_threads, 3u);
  EXPECT_EQ(pool.degradation().failed_spawns, 1u);
  EXPECT_TRUE(pool.degradation().degraded());
  // The degraded pool still runs kernels on every surviving worker.
  std::vector<int> hits(pool.size(), 0);
  pool.run([&](std::size_t p) { hits[p] = 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

// ------------------------------------------------------ stall watchdog

TEST(FaultInjection, WedgedProducerSurfacesStallError) {
  const Dataset data = generate_uniform(40000, 10, 2, 51);
  fault::ScopedFaultInjection injection;
  // One worker sleeps 1.5s mid-scan; the others go idle, global progress
  // freezes, and the 100ms watchdog must fire long before the sleep ends.
  fault::arm(fault::Point::kStage1Row, 5000, fault::Action::kStall, 1500);

  WaitFreeBuilderOptions options;
  options.threads = 4;
  options.pipelined = true;
  options.stall_timeout_seconds = 0.1;
  WaitFreeBuilder builder(options);
  try {
    (void)builder.build(data);
    FAIL() << "expected StallError";
  } catch (const StallError& stall) {
    EXPECT_EQ(stall.worker_progress().size(), 4u);
    EXPECT_NE(std::string(stall.what()).find("stalled"), std::string::npos);
  }
}

TEST(FaultInjection, WedgedDrainEitherStallsTypedOrRecovers) {
  const Dataset data = generate_uniform(40000, 10, 2, 52);
  const auto reference = reference_counts(data);
  fault::ScopedFaultInjection injection;
  fault::arm(fault::Point::kPipelineDrain, 3, fault::Action::kStall, 1500);

  WaitFreeBuilderOptions options;
  options.threads = 4;
  options.pipelined = true;
  options.stall_timeout_seconds = 0.1;
  WaitFreeBuilder builder(options);
  // Depending on where the wedge lands the build either aborts with the
  // typed stall error or rides it out; both are defined, a hang is not.
  try {
    const PotentialTable table = builder.build(data);
    expect_equal_counts(table, reference);
  } catch (const StallError& stall) {
    EXPECT_EQ(stall.worker_progress().size(), 4u);
  }
}

TEST(FaultInjection, WatchdogStaysQuietOnHealthyBuilds) {
  const Dataset data = generate_uniform(20000, 10, 2, 53);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  options.pipelined = true;
  options.stall_timeout_seconds = 0.5;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  expect_equal_counts(table, reference_counts(data));
}

// --------------------------------------------------- wide-key schedule sweep

// The unified key-trait-templated kernel means every fault point above is
// also a wide-path fault point: the same WFBN_FAULT_POINT sites execute when
// the builder runs over two-word keys. This sweep arms random schedules
// (same generator the narrow fuzz harness uses) and drives them through a
// wide build at n = 100 binary variables — past the 64-bit key limit — with
// the same oracle: a typed error or the exact reference table, never a
// crash, hang, or corrupted result.

std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>
wide_snapshot(const WidePotentialTable& table) {
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> counts;
  table.for_each([&](WideKey key, std::uint64_t c) {
    counts[{key.lo, key.hi}] += c;
  });
  return counts;
}

TEST(WideFaultInjection, RandomSchedulesThrowTypedErrorsOrStayExact) {
  const Dataset data = generate_chain_correlated(6000, 100, 2, 0.8, 61);
  WideBuilderOptions options;
  options.threads = 4;
  options.stall_timeout_seconds = 5.0;
  const auto reference = wide_snapshot(WideWaitFreeBuilder(options).build(data));

  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    fault::ScopedFaultInjection injection;
    const std::string schedule = fault::arm_random_schedule(seed);
    for (const bool pipelined : {false, true}) {
      WideBuilderOptions faulted = options;
      faulted.pipelined = pipelined;
      WideWaitFreeBuilder builder(faulted);
      try {
        const WidePotentialTable table = builder.build(data);
        ASSERT_TRUE(table.validate()) << "schedule: " << schedule;
        EXPECT_EQ(wide_snapshot(table), reference) << "schedule: " << schedule;
      } catch (const InjectedFault&) {
      } catch (const StallError&) {
      }
    }
  }
}

TEST(WideFaultInjection, MidAppendThrowLeavesWideTableBitIdentical) {
  const Dataset base = generate_chain_correlated(4000, 100, 2, 0.8, 62);
  const Dataset batch = generate_chain_correlated(8000, 100, 2, 0.8, 63);
  WideBuilderOptions options;
  options.threads = 2;
  WideWaitFreeBuilder builder(options);

  WidePotentialTable reference_table = builder.build(base);
  const auto before = wide_snapshot(reference_table);
  const std::uint64_t samples_before = reference_table.sample_count();
  builder.append(batch, reference_table);
  const auto combined = wide_snapshot(reference_table);

  // Either/or oracle per point: with hash-based wide ownership some points
  // are traffic-dependent (e.g. chunk allocation needs a queue to overflow
  // its first chunk), so an armed point that is never reached must leave a
  // complete append — and one that fires must leave the table bit-identical
  // and the append retryable from exactly the pre-fault state.
  for (const auto& [point, fire_on] :
       {std::make_pair(fault::Point::kStage1Row, std::uint64_t{1}),
        std::make_pair(fault::Point::kStage1Row, std::uint64_t{5000}),
        std::make_pair(fault::Point::kSpscChunkAlloc, std::uint64_t{1}),
        std::make_pair(fault::Point::kStage2Drain, std::uint64_t{100}),
        std::make_pair(fault::Point::kAppendCommit, std::uint64_t{1})}) {
    WidePotentialTable table = builder.build(base);
    fault::ScopedFaultInjection injection;
    fault::arm(point, fire_on);
    bool fired = false;
    try {
      builder.append(batch, table);
    } catch (const InjectedFault&) {
      fired = true;
    }
    if (fired) {
      EXPECT_EQ(table.sample_count(), samples_before)
          << fault::point_name(point);
      EXPECT_EQ(wide_snapshot(table), before) << fault::point_name(point);
      ASSERT_TRUE(table.validate());
      fault::reset();
      builder.append(batch, table);  // transient: the retry lands whole
    }
    EXPECT_EQ(table.sample_count(), samples_before + batch.sample_count());
    EXPECT_EQ(wide_snapshot(table), combined) << fault::point_name(point);
    ASSERT_TRUE(table.validate());
  }
}

TEST(WideFaultInjection, SpawnFailureDegradesWideBuildToFewerWorkers) {
  const Dataset data = generate_chain_correlated(5000, 80, 2, 0.8, 64);
  WideBuilderOptions options;
  options.threads = 6;
  const auto reference = wide_snapshot(WideWaitFreeBuilder(options).build(data));

  fault::ScopedFaultInjection injection;
  fault::arm(fault::Point::kThreadSpawn, 3);
  WideWaitFreeBuilder builder(options);
  const WidePotentialTable table = builder.build(data);

  EXPECT_EQ(wide_snapshot(table), reference);
  EXPECT_EQ(builder.stats().requested_workers, 6u);
  EXPECT_EQ(builder.stats().effective_workers, 2u);
  EXPECT_TRUE(builder.stats().degraded());
}

// ------------------------------------------------------ framework basics

TEST(FaultInjection, DisabledPointsNeverFire) {
  fault::reset();
  ASSERT_FALSE(fault::enabled());
  // Unarmed + disabled: fire() is never reached via the macro; calling the
  // slow path directly must still be a no-op.
  fault::fire(fault::Point::kStage1Row);
  SUCCEED();
}

TEST(FaultInjection, ArmedPointFiresExactlyOnTheScheduledHit) {
  fault::ScopedFaultInjection injection;
  fault::arm(fault::Point::kStage1Row, 3);
  fault::fire(fault::Point::kStage1Row);
  fault::fire(fault::Point::kStage1Row);
  EXPECT_THROW(fault::fire(fault::Point::kStage1Row), InjectedFault);
  // One-shot: later hits pass through again.
  fault::fire(fault::Point::kStage1Row);
  EXPECT_EQ(fault::hits(fault::Point::kStage1Row), 4u);
}

TEST(FaultInjection, RandomSchedulesAreDeterministicPerSeed) {
  fault::ScopedFaultInjection injection;
  const std::string a = fault::arm_random_schedule(1234);
  const std::string b = fault::arm_random_schedule(1234);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(FaultInjection, PointNamesAreUniqueAndStable) {
  std::map<std::string, int> seen;
  for (int p = 0; p < fault::kPointCount; ++p) {
    ++seen[fault::point_name(static_cast<fault::Point>(p))];
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(fault::kPointCount));
  EXPECT_EQ(seen.count("unknown"), 0u);
}

// ------------------------------------------------------ persist/recover fuzz

TEST(PersistFaults, RandomFaultSchedulesNeverCorruptRecovery) {
  // 200 randomized schedules (now drawing from the persist.* points too)
  // against a write-two-versions-then-recover cycle. Whatever fires and
  // wherever it lands, recovery must surface a version whose counts are
  // bit-exact for that version — a crash may lose the tail, never truth.
  const Dataset base = generate_chain_correlated(1200, 8, 2, 0.8, 0x90);
  const Dataset more = generate_chain_correlated(2400, 8, 2, 0.8, 0x91);
  WaitFreeBuilderOptions options;
  options.threads = 2;
  WaitFreeBuilder builder(options);
  const PotentialTable t1 = builder.build(base);
  const PotentialTable t2 = builder.build(more);
  const std::map<Key, std::uint64_t> ref1 = snapshot(t1);
  const std::map<Key, std::uint64_t> ref2 = snapshot(t2);

  const std::filesystem::path root =
      std::filesystem::path(::testing::TempDir()) / "wfbn_persist_fuzz";
  std::filesystem::remove_all(root);

  int completed = 0;
  int faulted = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const std::filesystem::path dir = root / std::to_string(seed);
    std::filesystem::create_directories(dir);
    serve::persist::SnapshotWriter writer(dir);

    fault::ScopedFaultInjection injection;
    const std::string schedule = fault::arm_random_schedule(seed);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + schedule);
    try {
      writer.write(serve::Snapshot(t1, 1));
      writer.write(serve::Snapshot(t2, 2));
      ++completed;
    } catch (const InjectedFault&) {
      ++faulted;  // simulated crash: no cleanup, recover from what's on disk
    }
    fault::reset();  // recovery below must not trip the same schedule

    const auto recovery = serve::persist::recover_store_dir<Key>(dir);
    const std::uint64_t v = recovery.report.recovered_version;
    ASSERT_LE(v, 2u);
    if (v == 0) {
      // Nothing durable yet: only possible when even version 1 never
      // finished its rename.
      ASSERT_FALSE(
          std::filesystem::exists(dir / serve::persist::segment_name(1)));
      continue;
    }
    ASSERT_TRUE(recovery.table.has_value());
    EXPECT_EQ(snapshot(*recovery.table), v == 2 ? ref2 : ref1);
    EXPECT_TRUE(recovery.table->validate());
  }
  // The schedule pool must actually exercise both arms.
  EXPECT_GT(completed, 0);
  EXPECT_GT(faulted, 0);
}

TEST(PersistFaults, RecoverChecksumFaultForcesFallbackOneVersion) {
  // recover.checksum is a degradation point: firing it makes exactly one
  // checksum comparison report a mismatch. Hit 1 is the manifest, hit 2 the
  // newest segment's header — forcing that one rejects version 2 and
  // recovery must fall back to version 1, recording the rejection.
  const Dataset base = generate_chain_correlated(1200, 8, 2, 0.8, 0x92);
  const Dataset more = generate_chain_correlated(2400, 8, 2, 0.8, 0x93);
  WaitFreeBuilderOptions options;
  options.threads = 2;
  WaitFreeBuilder builder(options);
  const PotentialTable t1 = builder.build(base);
  const PotentialTable t2 = builder.build(more);

  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "wfbn_recover_checksum";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  serve::persist::SnapshotWriter writer(dir);
  writer.write(serve::Snapshot(t1, 1));
  writer.write(serve::Snapshot(t2, 2));

  fault::ScopedFaultInjection injection;
  fault::arm(fault::Point::kRecoverChecksum, 2);
  const auto recovery = serve::persist::recover_store_dir<Key>(dir);
  ASSERT_TRUE(recovery.table.has_value());
  EXPECT_EQ(recovery.report.recovered_version, 1u);
  EXPECT_TRUE(recovery.report.manifest_valid);  // hit 1 passed untouched
  ASSERT_FALSE(recovery.report.rejected.empty());
  EXPECT_EQ(recovery.report.rejected.front().version, 2u);
  EXPECT_EQ(recovery.report.rejected.front().reason,
            "segment header checksum mismatch");
  EXPECT_EQ(snapshot(*recovery.table), snapshot(t1));
  EXPECT_GE(fault::hits(fault::Point::kRecoverChecksum), 2u);
}

// ------------------------------------------------------ learner fault fuzz

TEST(LearnFaults, ArmedLearnPointsAbortTheLearnWithTypedErrors) {
  const Dataset data = generate_chain_correlated(8000, 6, 2, 0.8, 0xA0);
  WaitFreeBuilderOptions build_options;
  build_options.threads = 2;
  const PotentialTable table = WaitFreeBuilder(build_options).build(data);
  ChengOptions options;
  options.ci.threads = 2;

  for (const fault::Point point :
       {fault::Point::kLearnCiTest, fault::Point::kLearnSchedule}) {
    fault::ScopedFaultInjection injection;
    fault::arm(point, 1);
    EXPECT_THROW((void)ChengLearner(options).learn(table), InjectedFault)
        << fault::point_name(point);
    EXPECT_GE(fault::hits(point), 1u) << fault::point_name(point);
  }
}

TEST(LearnFaults, RandomSchedulesYieldTypedErrorOrBitIdenticalStructure) {
  // 200 randomized fault schedules (drawing from the learn.* points along
  // with every other registered point) against a full Cheng learn on a
  // parallel scheduler. The oracle is the scheduler's failure-atomicity
  // contract: either a typed error surfaces — InjectedFault from a fired
  // point, mid-batch, between batches, anywhere — or the learn completes
  // with a structure bit-identical to the unfaulted reference. A fault may
  // also degrade the learner-owned pool (spawn/pin points); determinism
  // across pool widths means even a degraded run must match exactly.
  const Dataset data = generate_chain_correlated(8000, 6, 2, 0.8, 0xA1);
  WaitFreeBuilderOptions build_options;
  build_options.threads = 2;
  const PotentialTable table = WaitFreeBuilder(build_options).build(data);
  ChengOptions options;
  options.ci.threads = 3;
  const ChengResult reference = ChengLearner(options).learn(table);

  int completed = 0;
  int faulted = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    fault::ScopedFaultInjection injection;
    const std::string schedule = fault::arm_random_schedule(seed);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + schedule);
    try {
      const ChengResult result = ChengLearner(options).learn(table);
      EXPECT_EQ(result.skeleton.edges(), reference.skeleton.edges());
      EXPECT_EQ(result.oriented.edges(), reference.oriented.edges());
      EXPECT_EQ(result.sepsets, reference.sepsets);
      EXPECT_EQ(result.ci_tests, reference.ci_tests);
      ++completed;
    } catch (const InjectedFault&) {
      ++faulted;
    }
    // The input table is immutable through a learn, faulted or not.
    ASSERT_TRUE(table.validate());
  }
  // The schedule pool must exercise both arms of the oracle.
  EXPECT_GT(completed, 0);
  EXPECT_GT(faulted, 0);
}

}  // namespace
}  // namespace wfbn
