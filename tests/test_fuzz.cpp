// Bounded randomized fuzzing of the whole pipeline: random dataset shapes,
// random thread counts, random variable subsets — every configuration must
// satisfy the core invariants (exact counts, marginal consistency, MI
// symmetry, query normalization). Seeded, so failures are reproducible.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "core/all_pairs_mi.hpp"
#include "core/info_theory.hpp"
#include "core/marginalizer.hpp"
#include "core/query.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace wfbn {
namespace {

struct FuzzConfig {
  std::size_t samples;
  std::vector<std::uint32_t> cardinalities;
  std::size_t build_threads;
  PartitionScheme scheme;
  bool pipelined;
  std::uint64_t data_seed;
};

FuzzConfig random_config(Xoshiro256& rng) {
  FuzzConfig config;
  config.samples = 500 + rng.bounded(8000);
  const std::size_t n = 2 + rng.bounded(14);
  config.cardinalities.resize(n);
  for (auto& r : config.cardinalities) {
    r = 2 + static_cast<std::uint32_t>(rng.bounded(4));
  }
  config.build_threads = 1 + rng.bounded(12);
  config.scheme = rng.bounded(2) == 0 ? PartitionScheme::kModulo
                                      : PartitionScheme::kRange;
  config.pipelined = rng.bounded(2) == 0;
  config.data_seed = rng();
  return config;
}

TEST(Fuzz, PipelineInvariantsHoldForRandomConfigurations) {
  Xoshiro256 meta_rng(0xF00D);
  for (int round = 0; round < 25; ++round) {
    const FuzzConfig config = random_config(meta_rng);
    SCOPED_TRACE("round " + std::to_string(round) + ": m=" +
                 std::to_string(config.samples) + " n=" +
                 std::to_string(config.cardinalities.size()) + " threads=" +
                 std::to_string(config.build_threads) +
                 (config.pipelined ? " pipelined" : " phased"));
    const Dataset data =
        generate_uniform(config.samples, config.cardinalities, config.data_seed);

    // ---- construction is exact.
    WaitFreeBuilderOptions options;
    options.threads = config.build_threads;
    options.scheme = config.scheme;
    options.pipelined = config.pipelined;
    WaitFreeBuilder builder(options);
    const PotentialTable table = builder.build(data);
    ASSERT_EQ(table.partitions().total_count(), config.samples);
    ASSERT_TRUE(table.validate());
    ASSERT_TRUE(table.partitions().ownership_invariant_holds());

    std::map<Key, std::uint64_t> reference;
    const KeyCodec codec = data.codec();
    for (std::size_t i = 0; i < config.samples; ++i) {
      ++reference[codec.encode(data.row(i))];
    }
    ASSERT_EQ(table.distinct_keys(), reference.size());

    // ---- a random marginal equals the brute-force count.
    Xoshiro256 pick(config.data_seed ^ 0x5EED);
    const std::size_t n = config.cardinalities.size();
    const std::size_t subset_size = 1 + pick.bounded(std::min<std::uint64_t>(3, n));
    std::vector<std::size_t> vars;
    while (vars.size() < subset_size) {
      const std::size_t v = static_cast<std::size_t>(pick.bounded(n));
      if (std::find(vars.begin(), vars.end(), v) == vars.end()) vars.push_back(v);
    }
    const Marginalizer marginalizer(1 + pick.bounded(6));
    const MarginalTable marginal = marginalizer.marginalize(table, vars);
    ASSERT_EQ(marginal.total(), config.samples);

    std::vector<std::uint64_t> brute(marginal.cell_count(), 0);
    std::vector<State> sub(vars.size());
    for (std::size_t i = 0; i < config.samples; ++i) {
      const auto row = data.row(i);
      for (std::size_t k = 0; k < vars.size(); ++k) sub[k] = row[vars[k]];
      ++brute[marginal.index_of(sub)];
    }
    for (std::uint64_t cell = 0; cell < marginal.cell_count(); ++cell) {
      ASSERT_EQ(marginal.count_at(cell), brute[cell]) << "cell " << cell;
    }

    // ---- MI matrix: symmetric, non-negative, bounded by min entropy.
    if (n <= 10) {
      AllPairsMi all_pairs(
          AllPairsOptions{1 + pick.bounded(4), AllPairsStrategy::kFused});
      const MiMatrix mi = all_pairs.compute(table);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t iv[] = {i};
        const double h_i = entropy(marginalizer.marginalize(table, iv));
        for (std::size_t j = 0; j < n; ++j) {
          ASSERT_DOUBLE_EQ(mi.at(i, j), mi.at(j, i));
          ASSERT_GE(mi.at(i, j), 0.0);
          if (i != j) {
            ASSERT_LE(mi.at(i, j), h_i + 1e-9);
          }
        }
      }
    }

    // ---- queries normalize.
    const QueryEngine engine(table, 1 + pick.bounded(4));
    const std::vector<double> p = engine.marginal(vars);
    const double total = std::accumulate(p.begin(), p.end(), 0.0);
    ASSERT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Fuzz, AppendMatchesMonolithicBuildForRandomSplits) {
  Xoshiro256 meta_rng(0xBEEF);
  for (int round = 0; round < 10; ++round) {
    const std::size_t n = 3 + meta_rng.bounded(8);
    const std::size_t m = 2000 + meta_rng.bounded(6000);
    const Dataset all = generate_uniform(m, n, 2, meta_rng());
    const std::size_t cut = 1 + meta_rng.bounded(m - 1);
    SCOPED_TRACE("round " + std::to_string(round) + " cut=" + std::to_string(cut));

    const auto split = static_cast<std::ptrdiff_t>(cut * n);
    std::vector<State> head(all.raw().begin(), all.raw().begin() + split);
    std::vector<State> tail(all.raw().begin() + split, all.raw().end());
    const Dataset first(cut, all.cardinalities(), std::move(head));
    const Dataset second(m - cut, all.cardinalities(), std::move(tail));

    WaitFreeBuilderOptions options;
    options.threads = 1 + meta_rng.bounded(8);
    WaitFreeBuilder builder(options);
    PotentialTable incremental = builder.build(first);
    builder.append(second, incremental);
    const PotentialTable monolithic = builder.build(all);

    ASSERT_EQ(incremental.sample_count(), monolithic.sample_count());
    ASSERT_EQ(incremental.distinct_keys(), monolithic.distinct_keys());
    bool all_match = true;
    monolithic.partitions().for_each([&](Key key, std::uint64_t c) {
      if (incremental.partitions().count_anywhere(key) != c) all_match = false;
    });
    ASSERT_TRUE(all_match);
  }
}

std::map<Key, std::uint64_t> key_counts(const Dataset& data) {
  const KeyCodec codec = data.codec();
  std::map<Key, std::uint64_t> counts;
  for (std::size_t i = 0; i < data.sample_count(); ++i) {
    ++counts[codec.encode(data.row(i))];
  }
  return counts;
}

std::map<Key, std::uint64_t> table_counts(const PotentialTable& table) {
  std::map<Key, std::uint64_t> counts;
  table.partitions().for_each(
      [&](Key key, std::uint64_t c) { counts[key] += c; });
  return counts;
}

// Randomized fault-schedule sweep: each round arms a pseudo-random subset of
// failure points (fault::arm_random_schedule) and runs a full build under a
// random configuration. The contract under arbitrary schedules is all-or-
// nothing: either the build completes with the exact serial-reference table
// or it throws a typed error — never a crash, a hang, or a wrong table.
TEST(Fuzz, RandomFaultSchedulesYieldTypedErrorOrExactBuild) {
  // Fixed datasets with precomputed references keep the 100 rounds cheap.
  const Dataset small = generate_uniform(3000, 8, 2, 0xAB);
  const Dataset large = generate_uniform(9000, 10, 2, 0xCD);
  const auto small_reference = key_counts(small);
  const auto large_reference = key_counts(large);

  Xoshiro256 meta_rng(0xFA01);
  int completed = 0, faulted = 0, stalled = 0;
  for (std::uint64_t round = 0; round < 100; ++round) {
    const bool use_large = meta_rng.bounded(2) == 0;
    const Dataset& data = use_large ? large : small;
    const auto& reference = use_large ? large_reference : small_reference;

    WaitFreeBuilderOptions options;
    options.threads = 1 + meta_rng.bounded(8);
    options.scheme = meta_rng.bounded(2) == 0 ? PartitionScheme::kModulo
                                              : PartitionScheme::kRange;
    options.pipelined = meta_rng.bounded(2) == 0;
    // Backstop only: random schedules arm throwing points, so a stall means
    // a worker wedged some other way — surface it as a typed error.
    options.stall_timeout_seconds = 5.0;

    fault::ScopedFaultInjection injection;
    const std::string schedule = fault::arm_random_schedule(meta_rng());
    SCOPED_TRACE("round " + std::to_string(round) + " threads=" +
                 std::to_string(options.threads) +
                 (options.pipelined ? " pipelined" : " phased") +
                 " schedule={" + schedule + "}");

    WaitFreeBuilder builder(options);
    try {
      const PotentialTable table = builder.build(data);
      ASSERT_TRUE(table.validate());
      ASSERT_EQ(table.sample_count(), data.sample_count());
      ASSERT_EQ(table_counts(table), reference);
      ++completed;
    } catch (const InjectedFault&) {
      ++faulted;
    } catch (const StallError&) {
      ++stalled;
    }
  }
  // The schedule generator must actually exercise both arms.
  EXPECT_GT(completed, 0) << faulted << " faulted, " << stalled << " stalled";
  EXPECT_GT(faulted, 0) << completed << " completed";
}

// Same sweep over append(): an injected throw must leave the destination
// table bit-identical; a completed append must equal base + batch exactly.
TEST(Fuzz, RandomFaultSchedulesPreserveAppendStrongGuarantee) {
  const Dataset base = generate_uniform(4000, 9, 2, 0x11);
  const Dataset batch = generate_uniform(6000, 9, 2, 0x22);
  const auto base_reference = key_counts(base);
  std::map<Key, std::uint64_t> combined_reference = base_reference;
  for (const auto& [key, count] : key_counts(batch)) {
    combined_reference[key] += count;
  }

  WaitFreeBuilderOptions build_options;
  build_options.threads = 4;
  const PotentialTable pristine = WaitFreeBuilder(build_options).build(base);
  ASSERT_EQ(table_counts(pristine), base_reference);

  Xoshiro256 meta_rng(0xFA02);
  int completed = 0, faulted = 0;
  for (std::uint64_t round = 0; round < 100; ++round) {
    PotentialTable table = pristine;  // fresh copy of the clean base table

    WaitFreeBuilderOptions options;
    options.threads = 1 + meta_rng.bounded(8);
    WaitFreeBuilder builder(options);

    fault::ScopedFaultInjection injection;
    const std::string schedule = fault::arm_random_schedule(meta_rng());
    SCOPED_TRACE("round " + std::to_string(round) + " threads=" +
                 std::to_string(options.threads) + " schedule={" + schedule +
                 "}");

    try {
      builder.append(batch, table);
      ASSERT_EQ(table.sample_count(), base.sample_count() + batch.sample_count());
      ASSERT_EQ(table_counts(table), combined_reference);
      ++completed;
    } catch (const InjectedFault&) {
      // Strong guarantee: bit-identical to the pre-append state.
      ASSERT_EQ(table.sample_count(), base.sample_count());
      ASSERT_EQ(table.distinct_keys(), pristine.distinct_keys());
      ASSERT_EQ(table_counts(table), base_reference);
      ASSERT_TRUE(table.validate());
      ++faulted;
    }
  }
  EXPECT_GT(completed, 0);
  EXPECT_GT(faulted, 0) << completed << " completed";
}

}  // namespace
}  // namespace wfbn
