// Correctness tests for the wait-free table-construction primitive
// (Algorithms 1–2): the parallel build must produce exactly the counts a
// sequential scan produces, for every thread count, partition scheme, data
// shape, and the pipelined variant.
#include <gtest/gtest.h>

#include <map>
#include <type_traits>
#include <utility>

#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace wfbn {
namespace {

std::map<Key, std::uint64_t> reference_counts(const Dataset& data) {
  const KeyCodec codec = data.codec();
  std::map<Key, std::uint64_t> counts;
  for (std::size_t i = 0; i < data.sample_count(); ++i) {
    ++counts[codec.encode(data.row(i))];
  }
  return counts;
}

void expect_equal_counts(const PotentialTable& table,
                         const std::map<Key, std::uint64_t>& reference) {
  EXPECT_EQ(table.distinct_keys(), reference.size());
  std::uint64_t visited = 0;
  bool all_match = true;
  table.partitions().for_each([&](Key key, std::uint64_t c) {
    ++visited;
    const auto it = reference.find(key);
    if (it == reference.end() || it->second != c) all_match = false;
  });
  EXPECT_TRUE(all_match);
  EXPECT_EQ(visited, reference.size());
}

TEST(WaitFreeBuilder, SingleThreadMatchesReference) {
  const Dataset data = generate_uniform(5000, 10, 2, 1);
  WaitFreeBuilder builder;
  const PotentialTable table = builder.build(data);
  expect_equal_counts(table, reference_counts(data));
  EXPECT_TRUE(table.validate());
}

// The central property, swept over thread counts × schemes × variants.
struct BuilderConfig {
  std::size_t threads;
  PartitionScheme scheme;
  bool pipelined;
};

class BuilderEquivalence : public ::testing::TestWithParam<BuilderConfig> {};

TEST_P(BuilderEquivalence, ParallelBuildEqualsSequentialCounts) {
  const BuilderConfig config = GetParam();
  const Dataset data = generate_uniform(20000, 12, 3, 77);
  WaitFreeBuilderOptions options;
  options.threads = config.threads;
  options.scheme = config.scheme;
  options.pipelined = config.pipelined;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);

  expect_equal_counts(table, reference_counts(data));
  EXPECT_EQ(table.sample_count(), 20000u);
  EXPECT_TRUE(table.validate());
  EXPECT_TRUE(table.partitions().ownership_invariant_holds());

  // Instrumentation must account for every row exactly once.
  const BuildStats& stats = builder.stats();
  ASSERT_EQ(stats.workers.size(), config.threads);
  std::uint64_t rows = 0;
  std::uint64_t local = 0;
  std::uint64_t foreign = 0;
  std::uint64_t pops = 0;
  for (const WorkerStats& w : stats.workers) {
    rows += w.rows_encoded;
    local += w.local_updates;
    foreign += w.foreign_pushes;
    pops += w.stage2_pops;
  }
  EXPECT_EQ(rows, 20000u);
  EXPECT_EQ(local + foreign, 20000u);
  EXPECT_EQ(pops, foreign);  // every routed key is drained exactly once
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BuilderEquivalence,
    ::testing::Values(
        BuilderConfig{1, PartitionScheme::kModulo, false},
        BuilderConfig{2, PartitionScheme::kModulo, false},
        BuilderConfig{3, PartitionScheme::kModulo, false},
        BuilderConfig{8, PartitionScheme::kModulo, false},
        BuilderConfig{32, PartitionScheme::kModulo, false},
        BuilderConfig{2, PartitionScheme::kRange, false},
        BuilderConfig{8, PartitionScheme::kRange, false},
        BuilderConfig{32, PartitionScheme::kRange, false},
        BuilderConfig{1, PartitionScheme::kModulo, true},
        BuilderConfig{2, PartitionScheme::kModulo, true},
        BuilderConfig{8, PartitionScheme::kModulo, true},
        BuilderConfig{32, PartitionScheme::kModulo, true},
        BuilderConfig{8, PartitionScheme::kRange, true}),
    [](const auto& param_info) {
      return std::to_string(param_info.param.threads) + "threads_" +
             (param_info.param.scheme == PartitionScheme::kModulo ? "modulo"
                                                            : "range") +
             (param_info.param.pipelined ? "_pipelined" : "_phased");
    });

TEST(WaitFreeBuilder, SkewedDataStillExact) {
  const Dataset data = generate_skewed(30000, 16, 2, 1e-4, 0.9, 5);
  WaitFreeBuilderOptions options;
  options.threads = 8;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  expect_equal_counts(table, reference_counts(data));
}

TEST(WaitFreeBuilder, CorrelatedDataStillExact) {
  const Dataset data = generate_chain_correlated(30000, 14, 2, 0.95, 6);
  WaitFreeBuilderOptions options;
  options.threads = 6;
  options.pipelined = true;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  expect_equal_counts(table, reference_counts(data));
}

TEST(WaitFreeBuilder, MixedCardinalitiesSupported) {
  const Dataset data =
      generate_uniform(10000, std::vector<std::uint32_t>{2, 5, 3, 7, 2, 4}, 8);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  expect_equal_counts(table, reference_counts(data));
}

TEST(WaitFreeBuilder, MoreThreadsThanRows) {
  const Dataset data = generate_uniform(5, 4, 2, 9);
  WaitFreeBuilderOptions options;
  options.threads = 16;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  expect_equal_counts(table, reference_counts(data));
  EXPECT_EQ(table.sample_count(), 5u);
}

TEST(WaitFreeBuilder, SingleRowDataset) {
  Dataset data(1, {2, 2, 2});
  data.set(0, 1, 1);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  const State row[] = {0, 1, 0};
  EXPECT_EQ(table.count_of(row), 1u);
  EXPECT_EQ(table.distinct_keys(), 1u);
}

TEST(WaitFreeBuilder, EmptyDatasetRejected) {
  Dataset data(0, {2, 2});
  WaitFreeBuilder builder;
  EXPECT_THROW((void)builder.build(data), PreconditionError);
}

TEST(WaitFreeBuilder, DeterministicAcrossRepetitionsAndThreadCounts) {
  const Dataset data = generate_uniform(10000, 20, 2, 10);
  const auto reference = reference_counts(data);
  for (const std::size_t threads : {1u, 2u, 5u, 16u}) {
    for (int repeat = 0; repeat < 2; ++repeat) {
      WaitFreeBuilderOptions options;
      options.threads = threads;
      WaitFreeBuilder builder(options);
      expect_equal_counts(builder.build(data), reference);
    }
  }
}

TEST(WaitFreeBuilder, ReusedAcrossBuilds) {
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  const Dataset first = generate_uniform(5000, 8, 2, 11);
  const Dataset second = generate_uniform(7000, 8, 2, 12);
  expect_equal_counts(builder.build(first), reference_counts(first));
  expect_equal_counts(builder.build(second), reference_counts(second));
  EXPECT_EQ(builder.stats().workers.size(), 4u);
}

TEST(WaitFreeBuilder, ExternalPoolOverridesConfiguredThreads) {
  const Dataset data = generate_uniform(4000, 8, 2, 13);
  WaitFreeBuilderOptions options;
  options.threads = 2;
  WaitFreeBuilder builder(options);
  ThreadPool pool(6);
  const PotentialTable table = builder.build(data, pool);
  EXPECT_EQ(table.partitions().partition_count(), 6u);
  EXPECT_EQ(builder.stats().workers.size(), 6u);
  expect_equal_counts(table, reference_counts(data));
}

TEST(WaitFreeBuilder, StatsExposeWaitFreeWorkSplit) {
  // With P partitions and uniform keys, ~1/P of rows are local: check the
  // foreign fraction is in a plausible band for P=4 (expected 75%).
  const Dataset data = generate_uniform(40000, 16, 2, 14);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  (void)builder.build(data);
  const double foreign_fraction =
      static_cast<double>(builder.stats().total_foreign_pushes()) / 40000.0;
  EXPECT_NEAR(foreign_fraction, 0.75, 0.05);
  EXPECT_GT(builder.stats().critical_path_seconds(), 0.0);
  EXPECT_GT(builder.stats().total_seconds, 0.0);
}

TEST(WaitFreeBuilder, AppendFoldsBatchesExactly) {
  // Building in two batches must equal building everything at once.
  const Dataset all = generate_uniform(30000, 10, 2, 15);
  std::vector<State> first_half(all.raw().begin(),
                                all.raw().begin() + 15000 * 10);
  std::vector<State> second_half(all.raw().begin() + 15000 * 10,
                                 all.raw().end());
  const Dataset batch1(15000, all.cardinalities(), std::move(first_half));
  const Dataset batch2(15000, all.cardinalities(), std::move(second_half));

  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  PotentialTable incremental = builder.build(batch1);
  builder.append(batch2, incremental);
  EXPECT_EQ(incremental.sample_count(), 30000u);
  EXPECT_TRUE(incremental.validate());
  expect_equal_counts(incremental, reference_counts(all));
  EXPECT_TRUE(incremental.partitions().ownership_invariant_holds());

  // Append stats account for the batch.
  std::uint64_t rows = 0;
  for (const WorkerStats& w : builder.stats().workers) rows += w.rows_encoded;
  EXPECT_EQ(rows, 15000u);
}

TEST(WaitFreeBuilder, AppendRejectsMismatchedCardinalities) {
  const Dataset base = generate_uniform(1000, 6, 2, 16);
  const Dataset bad = generate_uniform(1000, 6, 3, 16);
  WaitFreeBuilderOptions options;
  options.threads = 2;
  WaitFreeBuilder builder(options);
  PotentialTable table = builder.build(base);
  EXPECT_THROW(builder.append(bad, table), DataError);
}

TEST(WaitFreeBuilder, AppendRejectsRebalancedTable) {
  const Dataset base = generate_uniform(5000, 8, 2, 17);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  PotentialTable table = builder.build(base);
  table.partitions().rebalance();
  EXPECT_THROW(builder.append(base, table), DataError);
}

TEST(WaitFreeBuilder, InvalidOptionsRejected) {
  WaitFreeBuilderOptions zero_threads;
  zero_threads.threads = 0;
  EXPECT_THROW(WaitFreeBuilder{zero_threads}, PreconditionError);
  WaitFreeBuilderOptions zero_batch;
  zero_batch.pipeline_batch = 0;
  EXPECT_THROW(WaitFreeBuilder{zero_batch}, PreconditionError);
  WaitFreeBuilderOptions zero_buffer;
  zero_buffer.route_buffer_keys = 0;
  EXPECT_THROW(WaitFreeBuilder{zero_buffer}, PreconditionError);
  WaitFreeBuilderOptions zero_strip;
  zero_strip.encode_block_rows = 0;
  EXPECT_THROW(WaitFreeBuilder{zero_strip}, PreconditionError);
}

// ---------------------------------------------------------------------------
// Block routing fast path: the batched configuration (write-combining router,
// strip encoding, prefetched bulk drains) must produce a table byte-for-byte
// identical to the scalar configuration (block size 1 everywhere), for both
// key widths, both variants, and for append as well as build.

/// Key-width-agnostic full table snapshot; two tables are byte-identical in
/// the sense that matters iff their snapshots are equal.
template <typename K>
std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> snapshot_of(
    const BasicPotentialTable<K>& table) {
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> counts;
  table.partitions().for_each([&](K key, std::uint64_t c) {
    if constexpr (std::is_same_v<K, WideKey>) {
      counts[{key.lo, key.hi}] = c;
    } else {
      counts[{key, 0}] = c;
    }
  });
  return counts;
}

WaitFreeBuilderOptions scalar_options(std::size_t threads, bool pipelined) {
  WaitFreeBuilderOptions options;
  options.threads = threads;
  options.pipelined = pipelined;
  options.route_buffer_keys = 1;
  options.prefetch_distance = 0;
  options.encode_block_rows = 1;
  options.simd = simd::Policy::kScalar;
  options.probe_cursors = 0;
  options.huge_pages = false;
  return options;
}

template <typename K>
class BlockRoutingOracle : public ::testing::Test {};

using OracleKeyTypes = ::testing::Types<Key, WideKey>;
TYPED_TEST_SUITE(BlockRoutingOracle, OracleKeyTypes);

TYPED_TEST(BlockRoutingOracle, BatchedBuildIsByteIdenticalToScalarBuild) {
  const Dataset data = generate_uniform(30000, 12, 3, 21);
  for (const bool pipelined : {false, true}) {
    BasicWaitFreeBuilder<TypeParam> scalar(scalar_options(4, pipelined));
    const auto scalar_table = scalar.build(data);
    // With a one-key buffer every route is its own flush and every drained
    // span is at most one key ahead of the scalar cadence.
    EXPECT_EQ(scalar.stats().total_route_flushes(),
              scalar.stats().total_foreign_pushes());

    // Sweep block geometries including sizes coprime with the row count and
    // chunk capacity, so partial-buffer flushes and chunk-straddling blocks
    // are all exercised.
    for (const std::size_t buffer : {2u, 7u, 64u, 5000u}) {
      WaitFreeBuilderOptions options = scalar_options(4, pipelined);
      options.route_buffer_keys = buffer;
      options.prefetch_distance = 4;
      options.encode_block_rows = 32;
      BasicWaitFreeBuilder<TypeParam> batched(options);
      const auto batched_table = batched.build(data);
      EXPECT_EQ(snapshot_of(batched_table), snapshot_of(scalar_table))
          << "buffer=" << buffer << " pipelined=" << pipelined;
      EXPECT_EQ(batched_table.sample_count(), scalar_table.sample_count());

      const BuildStats& stats = batched.stats();
      EXPECT_EQ(stats.total_foreign_pushes(),
                scalar.stats().total_foreign_pushes());
      // Buffering compresses flushes: strictly fewer than one per key.
      EXPECT_LT(stats.total_route_flushes(), stats.total_foreign_pushes());
      EXPECT_GT(stats.total_route_flushes(), 0u);
      EXPECT_GT(stats.total_bulk_pops(), 0u);
      // Every routed key is still drained exactly once, in bulk spans.
      std::uint64_t pops = 0;
      for (const WorkerStats& w : stats.workers) pops += w.stage2_pops;
      EXPECT_EQ(pops, stats.total_foreign_pushes());
      EXPECT_LE(stats.total_bulk_pops(), pops);
    }
  }
}

TYPED_TEST(BlockRoutingOracle, SimdProbeHugePageSweepIsByteIdenticalToScalar) {
  const Dataset data = generate_uniform(30000, 12, 3, 25);
  for (const bool pipelined : {false, true}) {
    BasicWaitFreeBuilder<TypeParam> scalar(scalar_options(4, pipelined));
    const auto scalar_table = scalar.build(data);

    // Every dispatch policy (kAvx2 degrades gracefully on hosts without it)
    // crossed with in-order vs. multi-cursor draining and both page
    // backings. 31 rows per strip keeps a remainder sub-tile in play on
    // every strip.
    for (const simd::Policy policy :
         {simd::Policy::kScalar, simd::Policy::kAuto, simd::Policy::kAvx2}) {
      for (const std::size_t cursors : {0u, 16u}) {
        for (const bool huge : {false, true}) {
          WaitFreeBuilderOptions options = scalar_options(4, pipelined);
          options.route_buffer_keys = 64;
          options.prefetch_distance = 4;
          options.encode_block_rows = 31;
          options.simd = policy;
          options.probe_cursors = cursors;
          options.huge_pages = huge;
          BasicWaitFreeBuilder<TypeParam> swept(options);
          const auto swept_table = swept.build(data);
          EXPECT_EQ(snapshot_of(swept_table), snapshot_of(scalar_table))
              << "policy=" << simd::policy_name(policy)
              << " cursors=" << cursors << " huge=" << huge
              << " pipelined=" << pipelined;
          EXPECT_LE(static_cast<int>(swept.stats().simd_level),
                    static_cast<int>(simd::detected()));
        }
      }
    }
  }
}

TYPED_TEST(BlockRoutingOracle, ForcedSimdDowngradeBuildsIdenticalTables) {
  const Dataset data = generate_uniform(20000, 10, 3, 26);
  WaitFreeBuilderOptions options = scalar_options(4, false);
  options.encode_block_rows = 32;
  options.simd = simd::Policy::kAvx2;

  BasicWaitFreeBuilder<TypeParam> native(options);
  const auto native_table = native.build(data);

  simd::ScopedForceLevel force(simd::Level::kScalar);
  BasicWaitFreeBuilder<TypeParam> forced(options);
  const auto forced_table = forced.build(data);
  // The downgrade is silent, reported, and bit-exact.
  EXPECT_EQ(forced.stats().simd_level, simd::Level::kScalar);
  EXPECT_EQ(snapshot_of(forced_table), snapshot_of(native_table));
}

TEST(WaitFreeBuilder, HugePageOutcomesAreReportedInBuildStats) {
  const Dataset data = generate_uniform(10000, 12, 2, 27);
  WaitFreeBuilderOptions options;
  options.threads = 2;
  // Pre-size each partition past one huge page (16-byte entries) so the
  // request is eligible everywhere.
  options.expected_distinct_keys = 400000;

  options.huge_pages = false;
  WaitFreeBuilder plain(options);
  (void)plain.build(data);
  EXPECT_EQ(plain.stats().huge_page_tables, 0u);
  EXPECT_EQ(plain.stats().huge_page_fallbacks, 0u);

  options.huge_pages = true;
  WaitFreeBuilder huge(options);
  (void)huge.build(data);
  // Advice accepted or refused is host policy; either way every eligible
  // partition must be accounted for and nothing may throw.
  EXPECT_EQ(huge.stats().huge_page_tables + huge.stats().huge_page_fallbacks,
            2u);
}

TYPED_TEST(BlockRoutingOracle, BatchedAppendIsByteIdenticalToScalarAppend) {
  const Dataset base = generate_uniform(8000, 10, 2, 22);
  const Dataset batch = generate_uniform(6000, 10, 2, 23);

  BasicWaitFreeBuilder<TypeParam> scalar(scalar_options(4, false));
  auto scalar_table = scalar.build(base);
  scalar.append(batch, scalar_table);

  WaitFreeBuilderOptions options = scalar_options(4, false);
  options.route_buffer_keys = 48;
  options.prefetch_distance = 8;
  options.encode_block_rows = 16;
  BasicWaitFreeBuilder<TypeParam> batched(options);
  auto batched_table = batched.build(base);
  batched.append(batch, batched_table);

  EXPECT_EQ(snapshot_of(batched_table), snapshot_of(scalar_table));
  EXPECT_EQ(batched_table.sample_count(), scalar_table.sample_count());
}

TEST(WaitFreeBuilder, TotalHelpersSumPerWorkerRoutingCounters) {
  const Dataset data = generate_uniform(20000, 12, 2, 24);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  (void)builder.build(data);
  const BuildStats& stats = builder.stats();
  std::uint64_t flushes = 0;
  std::uint64_t bulk = 0;
  for (const WorkerStats& w : stats.workers) {
    flushes += w.route_flushes;
    bulk += w.bulk_pops;
  }
  EXPECT_EQ(stats.total_route_flushes(), flushes);
  EXPECT_EQ(stats.total_bulk_pops(), bulk);
  EXPECT_GT(flushes, 0u);
  EXPECT_GT(bulk, 0u);
}

TEST(WaitFreeBuilder, BarrierSecondsIsMaxOverWorkers) {
  // With a skewed row split the fastest worker waits at the barrier for the
  // slowest; the reported crossing cost must reflect that wait, not worker
  // 0's (possibly zero) one.
  const Dataset data = generate_uniform(50000, 14, 2, 25);
  WaitFreeBuilderOptions options;
  options.threads = 8;
  WaitFreeBuilder builder(options);
  (void)builder.build(data);
  EXPECT_GE(builder.stats().barrier_seconds, 0.0);
  // The max-over-workers barrier cost is bounded by the build itself.
  EXPECT_LE(builder.stats().barrier_seconds, builder.stats().total_seconds);
}

}  // namespace
}  // namespace wfbn
