// Correctness tests for the wait-free table-construction primitive
// (Algorithms 1–2): the parallel build must produce exactly the counts a
// sequential scan produces, for every thread count, partition scheme, data
// shape, and the pipelined variant.
#include <gtest/gtest.h>

#include <map>

#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

std::map<Key, std::uint64_t> reference_counts(const Dataset& data) {
  const KeyCodec codec = data.codec();
  std::map<Key, std::uint64_t> counts;
  for (std::size_t i = 0; i < data.sample_count(); ++i) {
    ++counts[codec.encode(data.row(i))];
  }
  return counts;
}

void expect_equal_counts(const PotentialTable& table,
                         const std::map<Key, std::uint64_t>& reference) {
  EXPECT_EQ(table.distinct_keys(), reference.size());
  std::uint64_t visited = 0;
  bool all_match = true;
  table.partitions().for_each([&](Key key, std::uint64_t c) {
    ++visited;
    const auto it = reference.find(key);
    if (it == reference.end() || it->second != c) all_match = false;
  });
  EXPECT_TRUE(all_match);
  EXPECT_EQ(visited, reference.size());
}

TEST(WaitFreeBuilder, SingleThreadMatchesReference) {
  const Dataset data = generate_uniform(5000, 10, 2, 1);
  WaitFreeBuilder builder;
  const PotentialTable table = builder.build(data);
  expect_equal_counts(table, reference_counts(data));
  EXPECT_TRUE(table.validate());
}

// The central property, swept over thread counts × schemes × variants.
struct BuilderConfig {
  std::size_t threads;
  PartitionScheme scheme;
  bool pipelined;
};

class BuilderEquivalence : public ::testing::TestWithParam<BuilderConfig> {};

TEST_P(BuilderEquivalence, ParallelBuildEqualsSequentialCounts) {
  const BuilderConfig config = GetParam();
  const Dataset data = generate_uniform(20000, 12, 3, 77);
  WaitFreeBuilderOptions options;
  options.threads = config.threads;
  options.scheme = config.scheme;
  options.pipelined = config.pipelined;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);

  expect_equal_counts(table, reference_counts(data));
  EXPECT_EQ(table.sample_count(), 20000u);
  EXPECT_TRUE(table.validate());
  EXPECT_TRUE(table.partitions().ownership_invariant_holds());

  // Instrumentation must account for every row exactly once.
  const BuildStats& stats = builder.stats();
  ASSERT_EQ(stats.workers.size(), config.threads);
  std::uint64_t rows = 0;
  std::uint64_t local = 0;
  std::uint64_t foreign = 0;
  std::uint64_t pops = 0;
  for (const WorkerStats& w : stats.workers) {
    rows += w.rows_encoded;
    local += w.local_updates;
    foreign += w.foreign_pushes;
    pops += w.stage2_pops;
  }
  EXPECT_EQ(rows, 20000u);
  EXPECT_EQ(local + foreign, 20000u);
  EXPECT_EQ(pops, foreign);  // every routed key is drained exactly once
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BuilderEquivalence,
    ::testing::Values(
        BuilderConfig{1, PartitionScheme::kModulo, false},
        BuilderConfig{2, PartitionScheme::kModulo, false},
        BuilderConfig{3, PartitionScheme::kModulo, false},
        BuilderConfig{8, PartitionScheme::kModulo, false},
        BuilderConfig{32, PartitionScheme::kModulo, false},
        BuilderConfig{2, PartitionScheme::kRange, false},
        BuilderConfig{8, PartitionScheme::kRange, false},
        BuilderConfig{32, PartitionScheme::kRange, false},
        BuilderConfig{1, PartitionScheme::kModulo, true},
        BuilderConfig{2, PartitionScheme::kModulo, true},
        BuilderConfig{8, PartitionScheme::kModulo, true},
        BuilderConfig{32, PartitionScheme::kModulo, true},
        BuilderConfig{8, PartitionScheme::kRange, true}),
    [](const auto& param_info) {
      return std::to_string(param_info.param.threads) + "threads_" +
             (param_info.param.scheme == PartitionScheme::kModulo ? "modulo"
                                                            : "range") +
             (param_info.param.pipelined ? "_pipelined" : "_phased");
    });

TEST(WaitFreeBuilder, SkewedDataStillExact) {
  const Dataset data = generate_skewed(30000, 16, 2, 1e-4, 0.9, 5);
  WaitFreeBuilderOptions options;
  options.threads = 8;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  expect_equal_counts(table, reference_counts(data));
}

TEST(WaitFreeBuilder, CorrelatedDataStillExact) {
  const Dataset data = generate_chain_correlated(30000, 14, 2, 0.95, 6);
  WaitFreeBuilderOptions options;
  options.threads = 6;
  options.pipelined = true;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  expect_equal_counts(table, reference_counts(data));
}

TEST(WaitFreeBuilder, MixedCardinalitiesSupported) {
  const Dataset data =
      generate_uniform(10000, std::vector<std::uint32_t>{2, 5, 3, 7, 2, 4}, 8);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  expect_equal_counts(table, reference_counts(data));
}

TEST(WaitFreeBuilder, MoreThreadsThanRows) {
  const Dataset data = generate_uniform(5, 4, 2, 9);
  WaitFreeBuilderOptions options;
  options.threads = 16;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  expect_equal_counts(table, reference_counts(data));
  EXPECT_EQ(table.sample_count(), 5u);
}

TEST(WaitFreeBuilder, SingleRowDataset) {
  Dataset data(1, {2, 2, 2});
  data.set(0, 1, 1);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  const State row[] = {0, 1, 0};
  EXPECT_EQ(table.count_of(row), 1u);
  EXPECT_EQ(table.distinct_keys(), 1u);
}

TEST(WaitFreeBuilder, EmptyDatasetRejected) {
  Dataset data(0, {2, 2});
  WaitFreeBuilder builder;
  EXPECT_THROW((void)builder.build(data), PreconditionError);
}

TEST(WaitFreeBuilder, DeterministicAcrossRepetitionsAndThreadCounts) {
  const Dataset data = generate_uniform(10000, 20, 2, 10);
  const auto reference = reference_counts(data);
  for (const std::size_t threads : {1u, 2u, 5u, 16u}) {
    for (int repeat = 0; repeat < 2; ++repeat) {
      WaitFreeBuilderOptions options;
      options.threads = threads;
      WaitFreeBuilder builder(options);
      expect_equal_counts(builder.build(data), reference);
    }
  }
}

TEST(WaitFreeBuilder, ReusedAcrossBuilds) {
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  const Dataset first = generate_uniform(5000, 8, 2, 11);
  const Dataset second = generate_uniform(7000, 8, 2, 12);
  expect_equal_counts(builder.build(first), reference_counts(first));
  expect_equal_counts(builder.build(second), reference_counts(second));
  EXPECT_EQ(builder.stats().workers.size(), 4u);
}

TEST(WaitFreeBuilder, ExternalPoolOverridesConfiguredThreads) {
  const Dataset data = generate_uniform(4000, 8, 2, 13);
  WaitFreeBuilderOptions options;
  options.threads = 2;
  WaitFreeBuilder builder(options);
  ThreadPool pool(6);
  const PotentialTable table = builder.build(data, pool);
  EXPECT_EQ(table.partitions().partition_count(), 6u);
  EXPECT_EQ(builder.stats().workers.size(), 6u);
  expect_equal_counts(table, reference_counts(data));
}

TEST(WaitFreeBuilder, StatsExposeWaitFreeWorkSplit) {
  // With P partitions and uniform keys, ~1/P of rows are local: check the
  // foreign fraction is in a plausible band for P=4 (expected 75%).
  const Dataset data = generate_uniform(40000, 16, 2, 14);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  (void)builder.build(data);
  const double foreign_fraction =
      static_cast<double>(builder.stats().total_foreign_pushes()) / 40000.0;
  EXPECT_NEAR(foreign_fraction, 0.75, 0.05);
  EXPECT_GT(builder.stats().critical_path_seconds(), 0.0);
  EXPECT_GT(builder.stats().total_seconds, 0.0);
}

TEST(WaitFreeBuilder, AppendFoldsBatchesExactly) {
  // Building in two batches must equal building everything at once.
  const Dataset all = generate_uniform(30000, 10, 2, 15);
  std::vector<State> first_half(all.raw().begin(),
                                all.raw().begin() + 15000 * 10);
  std::vector<State> second_half(all.raw().begin() + 15000 * 10,
                                 all.raw().end());
  const Dataset batch1(15000, all.cardinalities(), std::move(first_half));
  const Dataset batch2(15000, all.cardinalities(), std::move(second_half));

  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  PotentialTable incremental = builder.build(batch1);
  builder.append(batch2, incremental);
  EXPECT_EQ(incremental.sample_count(), 30000u);
  EXPECT_TRUE(incremental.validate());
  expect_equal_counts(incremental, reference_counts(all));
  EXPECT_TRUE(incremental.partitions().ownership_invariant_holds());

  // Append stats account for the batch.
  std::uint64_t rows = 0;
  for (const WorkerStats& w : builder.stats().workers) rows += w.rows_encoded;
  EXPECT_EQ(rows, 15000u);
}

TEST(WaitFreeBuilder, AppendRejectsMismatchedCardinalities) {
  const Dataset base = generate_uniform(1000, 6, 2, 16);
  const Dataset bad = generate_uniform(1000, 6, 3, 16);
  WaitFreeBuilderOptions options;
  options.threads = 2;
  WaitFreeBuilder builder(options);
  PotentialTable table = builder.build(base);
  EXPECT_THROW(builder.append(bad, table), DataError);
}

TEST(WaitFreeBuilder, AppendRejectsRebalancedTable) {
  const Dataset base = generate_uniform(5000, 8, 2, 17);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  PotentialTable table = builder.build(base);
  table.partitions().rebalance();
  EXPECT_THROW(builder.append(base, table), DataError);
}

TEST(WaitFreeBuilder, InvalidOptionsRejected) {
  WaitFreeBuilderOptions zero_threads;
  zero_threads.threads = 0;
  EXPECT_THROW(WaitFreeBuilder{zero_threads}, PreconditionError);
  WaitFreeBuilderOptions zero_batch;
  zero_batch.pipeline_batch = 0;
  EXPECT_THROW(WaitFreeBuilder{zero_batch}, PreconditionError);
}

}  // namespace
}  // namespace wfbn
