// Tests for wfbn-lint (tools/wfbn_lint/): lexer behavior, one seeded
// violation per rule against a minimal fixture tree with exact
// file/line/rule assertions, the suppression syntax, --fix-docs, and the
// mutation self-tests from the issue's acceptance criteria — each mutation
// of the REAL tree (copied to a temp dir) must produce exactly the expected
// finding. The companion ctest `wfbn_lint_tree` is the self-gate that runs
// the binary over the real tree and requires zero findings.
#include "lint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using wfbn_lint::Finding;
using wfbn_lint::Options;
using wfbn_lint::Result;
using wfbn_lint::Rule;

namespace {

/// A scratch tree under the system temp dir, removed on destruction.
class TempTree {
 public:
  TempTree() {
    std::mt19937_64 rng(std::random_device{}());
    root_ = fs::temp_directory_path() /
            ("wfbn_lint_test_" + std::to_string(rng()));
    fs::create_directories(root_);
  }
  ~TempTree() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }
  TempTree(const TempTree&) = delete;
  TempTree& operator=(const TempTree&) = delete;

  [[nodiscard]] const fs::path& root() const { return root_; }

  void write(const std::string& rel, const std::string& content) const {
    const fs::path path = root_ / rel;
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
  }

  [[nodiscard]] std::string read(const std::string& rel) const {
    std::ifstream in(root_ / rel, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  /// Replaces `from` with `to` in the file; the needle must be present.
  void mutate(const std::string& rel, const std::string& from,
              const std::string& to) const {
    std::string text = read(rel);
    const std::size_t pos = text.find(from);
    ASSERT_NE(pos, std::string::npos) << "mutation needle not found in " << rel
                                      << ": " << from;
    text.replace(pos, from.size(), to);
    write(rel, text);
  }

 private:
  fs::path root_;
};

[[nodiscard]] Result run_on(const TempTree& tree, bool fix_docs = false) {
  Options options;
  options.root = tree.root().string();
  options.fix_docs = fix_docs;
  return wfbn_lint::run(options);
}

/// 1-based line of the first occurrence of `needle` in `content`.
[[nodiscard]] int line_of(const std::string& content, const std::string& needle) {
  const std::size_t pos = content.find(needle);
  EXPECT_NE(pos, std::string::npos) << "needle not found: " << needle;
  if (pos == std::string::npos) return -1;
  return 1 + static_cast<int>(std::count(content.begin(),
                                         content.begin() + static_cast<long>(pos), '\n'));
}

[[nodiscard]] std::vector<Finding> of_rule(const Result& result, Rule rule) {
  std::vector<Finding> out;
  for (const Finding& finding : result.findings) {
    if (finding.rule == rule) out.push_back(finding);
  }
  return out;
}

std::string describe(const Result& result) {
  return wfbn_lint::render_human(result);
}

// ---- Fixture: a minimal tree that lints clean. -----------------------------

const char* const kGadgetHpp = R"(#pragma once
#include <atomic>

namespace fix {

class Gadget {
 public:
  int get() const {
    return flag_.load(std::memory_order_acquire);
  }
  void set(int v) {
    flag_.store(v, std::memory_order_release);
  }

 private:
  std::atomic<int> flag_{0};
};

}  // namespace fix
)";

const char* const kFaultHpp = R"(#pragma once

namespace fix::fault {

enum class Point {
  kAlpha,
  kBeta,
};

}  // namespace fix::fault
)";

const char* const kFaultCpp = R"(#include "fault_injection.hpp"

namespace fix::fault {

const char* point_name(Point point) {
  switch (point) {
    case Point::kAlpha: return "alpha";
    case Point::kBeta: return "beta";
  }
  return "unknown";
}

std::string arm_random_schedule(unsigned seed) {
  static constexpr Point kThrowing[] = {
      Point::kAlpha,
  };
  return arm_all(kThrowing, seed);
}

std::string arm_random_net_schedule(unsigned seed) {
  static constexpr Point kNetPoints[] = {
      Point::kBeta,
  };
  return arm_all(kNetPoints, seed);
}

}  // namespace fix::fault
)";

const char* const kAlgorithmsMd = R"(# Algorithms

<!-- wfbn-lint:atomics-audit:begin -->
| File | Object | Op | Ordering | Lines | Invariant |
|---|---|---|---|---|---|
| `src/concurrent/gadget.hpp` | `flag_` | `load` | `acquire` | 9 | reader inherits the state published by set() |
| `src/concurrent/gadget.hpp` | `flag_` | `store` | `release` | 12 | publishes the gadget state to acquiring readers |
<!-- wfbn-lint:atomics-audit:end -->
)";

const char* const kRobustnessMd = R"(# Robustness

<!-- wfbn-lint:fault-points:begin -->
| Point | Schedules | Fires |
|---|---|---|
| `alpha` | random | fires in the alpha step |
| `beta` | net | fires in the beta step |
<!-- wfbn-lint:fault-points:end -->
)";

void write_clean_fixture(const TempTree& tree) {
  tree.write("src/concurrent/gadget.hpp", kGadgetHpp);
  tree.write("src/util/fault_injection.hpp", kFaultHpp);
  tree.write("src/util/fault_injection.cpp", kFaultCpp);
  tree.write("docs/ALGORITHMS.md", kAlgorithmsMd);
  tree.write("docs/ROBUSTNESS.md", kRobustnessMd);
}

// ---- Lexer -----------------------------------------------------------------

TEST(WfbnLintLexer, StripsCommentsAndStringsButKeepsStructure) {
  const wfbn_lint::SourceFile file = wfbn_lint::lex_source(
      "int a; // std::atomic<int> ghost;\n"
      "const char* s = \"std::mutex inside a string\";\n"
      "/* std::atomic<bool> block\n"
      "   comment */ int b;\n",
      "x.cpp");
  ASSERT_EQ(file.code.size(), 4u);
  for (const std::string& line : file.code) {
    EXPECT_EQ(line.find("atomic"), std::string::npos) << line;
    EXPECT_EQ(line.find("mutex"), std::string::npos) << line;
  }
  EXPECT_NE(file.code[0].find("int a;"), std::string::npos);
  EXPECT_NE(file.code[3].find("int b;"), std::string::npos);
  ASSERT_EQ(file.strings.size(), 1u);
  EXPECT_EQ(file.strings[0].text, "std::mutex inside a string");
  EXPECT_EQ(file.strings[0].line, 2);
}

TEST(WfbnLintLexer, RawStringsAndDigitSeparators) {
  const wfbn_lint::SourceFile file = wfbn_lint::lex_source(
      "auto r = R\"(std::atomic<int> raw)\";\n"
      "int big = 1'000'000;\n",
      "x.cpp");
  EXPECT_EQ(file.code[0].find("atomic"), std::string::npos);
  ASSERT_FALSE(file.strings.empty());
  EXPECT_EQ(file.strings[0].text, "std::atomic<int> raw");
  // The digit separators must not open a char literal that swallows the rest.
  EXPECT_NE(file.code[1].find("000"), std::string::npos);
}

TEST(WfbnLintLexer, ParsesDirectives) {
  const wfbn_lint::SourceFile file = wfbn_lint::lex_source(
      "// wfbn-lint: wait-free-begin\n"
      "int x;\n"
      "// wfbn-lint: allow(policy-purity, audit-sync) because reasons\n"
      "// wfbn-lint: wait-free-end\n",
      "x.cpp");
  ASSERT_EQ(file.directives.size(), 3u);
  EXPECT_EQ(file.directives[0].kind, wfbn_lint::Directive::Kind::kWaitFreeBegin);
  EXPECT_EQ(file.directives[0].line, 1);
  EXPECT_EQ(file.directives[1].kind, wfbn_lint::Directive::Kind::kAllow);
  ASSERT_EQ(file.directives[1].rules.size(), 2u);
  EXPECT_EQ(file.directives[1].rules[0], "policy-purity");
  EXPECT_EQ(file.directives[1].rules[1], "audit-sync");
  EXPECT_EQ(file.directives[1].reason, "because reasons");
  EXPECT_EQ(file.directives[2].kind, wfbn_lint::Directive::Kind::kWaitFreeEnd);
}

// ---- Fixture rule tests ----------------------------------------------------

TEST(WfbnLintRules, CleanFixtureIsClean) {
  TempTree tree;
  write_clean_fixture(tree);
  const Result result = run_on(tree);
  EXPECT_FALSE(result.io_error);
  EXPECT_TRUE(result.findings.empty()) << describe(result);
  EXPECT_EQ(result.sites.size(), 2u);
}

TEST(WfbnLintRules, R1ImplicitOrderExactSite) {
  TempTree tree;
  write_clean_fixture(tree);
  std::string gadget = kGadgetHpp;
  // Add an implicit-seq_cst load inside src/concurrent.
  const std::string seeded = "  int peek() const { return flag_.load(); }\n";
  gadget.insert(gadget.find(" private:"), seeded);
  tree.write("src/concurrent/gadget.hpp", gadget);
  const Result result = run_on(tree);
  const std::vector<Finding> findings = of_rule(result, Rule::kImplicitOrder);
  ASSERT_EQ(findings.size(), 1u) << describe(result);
  EXPECT_EQ(findings[0].file, "src/concurrent/gadget.hpp");
  EXPECT_EQ(findings[0].line, line_of(gadget, "peek()"));
  // The new implicit site also needs an audit row; that's a separate rule.
  EXPECT_EQ(result.findings.size(),
            findings.size() + of_rule(result, Rule::kAuditSync).size());
}

TEST(WfbnLintRules, R1OperatorRmwIsFlagged) {
  TempTree tree;
  write_clean_fixture(tree);
  const std::string util =
      "#pragma once\n"
      "#include <atomic>\n"
      "inline std::atomic<int> g_ticks{0};\n"
      "inline void tick() { g_ticks++; }\n";
  tree.write("src/util/ticks.hpp", util);
  const Result result = run_on(tree);
  const std::vector<Finding> findings = of_rule(result, Rule::kImplicitOrder);
  ASSERT_EQ(findings.size(), 1u) << describe(result);
  EXPECT_EQ(findings[0].file, "src/util/ticks.hpp");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("++"), std::string::npos);
}

TEST(WfbnLintRules, R2MissingAuditRow) {
  TempTree tree;
  write_clean_fixture(tree);
  std::string gadget = kGadgetHpp;
  // A brand-new atomic with no audit row at all.
  gadget.insert(gadget.find(" private:"),
                "  int bump() { return epoch_.fetch_add(1, std::memory_order_relaxed); }\n");
  gadget.insert(gadget.find("  std::atomic<int> flag_"),
                "  std::atomic<int> epoch_{0};\n");
  tree.write("src/concurrent/gadget.hpp", gadget);
  const Result result = run_on(tree);
  const std::vector<Finding> findings = of_rule(result, Rule::kAuditSync);
  ASSERT_EQ(findings.size(), 1u) << describe(result);
  EXPECT_EQ(result.findings.size(), 1u) << describe(result);
  EXPECT_EQ(findings[0].file, "src/concurrent/gadget.hpp");
  EXPECT_EQ(findings[0].line, line_of(gadget, "bump()"));
  EXPECT_NE(findings[0].message.find("no audit row"), std::string::npos);
}

TEST(WfbnLintRules, R2KnownSiteWithChangedOrderReportsMismatch) {
  TempTree tree;
  write_clean_fixture(tree);
  std::string gadget = kGadgetHpp;
  // Same object+op as an audited row, different ordering: the message should
  // point at the ordering drift, not just a generic missing row.
  gadget.insert(gadget.find(" private:"),
                "  int weak() const { return flag_.load(std::memory_order_relaxed); }\n");
  tree.write("src/concurrent/gadget.hpp", gadget);
  const Result result = run_on(tree);
  const std::vector<Finding> findings = of_rule(result, Rule::kAuditSync);
  ASSERT_EQ(findings.size(), 1u) << describe(result);
  EXPECT_EQ(findings[0].file, "src/concurrent/gadget.hpp");
  EXPECT_NE(findings[0].message.find("ordering does not match"), std::string::npos);
}

TEST(WfbnLintRules, R2StaleAuditRow) {
  TempTree tree;
  write_clean_fixture(tree);
  std::string doc = kAlgorithmsMd;
  const std::string stale =
      "| `src/concurrent/gadget.hpp` | `flag_` | `exchange` | `acq_rel` | 99 | gone |\n";
  doc.insert(doc.find("<!-- wfbn-lint:atomics-audit:end -->"), stale);
  tree.write("docs/ALGORITHMS.md", doc);
  const Result result = run_on(tree);
  const std::vector<Finding> findings = of_rule(result, Rule::kAuditSync);
  ASSERT_EQ(findings.size(), 1u) << describe(result);
  EXPECT_EQ(findings[0].file, "docs/ALGORITHMS.md");
  EXPECT_EQ(findings[0].line, line_of(doc, "`exchange`"));
  EXPECT_NE(findings[0].message.find("stale audit row"), std::string::npos);
}

TEST(WfbnLintRules, R2OrderingMismatchIsBothMissingAndStale) {
  TempTree tree;
  write_clean_fixture(tree);
  std::string doc = kAlgorithmsMd;
  // Doc claims the load is relaxed; the code says acquire.
  const std::size_t pos = doc.find("`load` | `acquire`");
  doc.replace(pos, std::string("`load` | `acquire`").size(), "`load` | `relaxed`");
  tree.write("docs/ALGORITHMS.md", doc);
  const Result result = run_on(tree);
  ASSERT_EQ(of_rule(result, Rule::kAuditSync).size(), 2u) << describe(result);
}

TEST(WfbnLintRules, R3UndocumentedFaultPoint) {
  TempTree tree;
  write_clean_fixture(tree);
  std::string hpp = kFaultHpp;
  hpp.insert(hpp.find("};"), "  kGamma,\n");
  tree.write("src/util/fault_injection.hpp", hpp);
  std::string cpp = kFaultCpp;
  cpp.insert(cpp.find("  }\n  return \"unknown\";"),
             "    case Point::kGamma: return \"gamma\";\n");
  tree.write("src/util/fault_injection.cpp", cpp);
  const Result result = run_on(tree);
  const std::vector<Finding> findings = of_rule(result, Rule::kFaultSync);
  ASSERT_EQ(findings.size(), 1u) << describe(result);
  EXPECT_EQ(findings[0].file, "src/util/fault_injection.hpp");
  EXPECT_EQ(findings[0].line, line_of(hpp, "kGamma"));
  EXPECT_NE(findings[0].message.find("no row"), std::string::npos);
}

TEST(WfbnLintRules, R3PointWithoutWireNameCase) {
  TempTree tree;
  write_clean_fixture(tree);
  std::string hpp = kFaultHpp;
  hpp.insert(hpp.find("};"), "  kGamma,\n");
  tree.write("src/util/fault_injection.hpp", hpp);
  const Result result = run_on(tree);
  const std::vector<Finding> findings = of_rule(result, Rule::kFaultSync);
  // kGamma has no point_name() case AND (consequently) no doc row.
  ASSERT_EQ(findings.size(), 2u) << describe(result);
  EXPECT_NE(findings[0].message + findings[1].message,
            findings[0].message);  // both present
}

TEST(WfbnLintRules, R3ScheduleMismatch) {
  TempTree tree;
  write_clean_fixture(tree);
  std::string doc = kRobustnessMd;
  const std::string row = "| `alpha` | random |";
  doc.replace(doc.find(row), row.size(), "| `alpha` | manual |");
  tree.write("docs/ROBUSTNESS.md", doc);
  const Result result = run_on(tree);
  const std::vector<Finding> findings = of_rule(result, Rule::kFaultSync);
  ASSERT_EQ(findings.size(), 1u) << describe(result);
  EXPECT_EQ(findings[0].file, "docs/ROBUSTNESS.md");
  EXPECT_EQ(findings[0].line, line_of(doc, "`alpha`"));
  EXPECT_NE(findings[0].message.find("wire it as `random`"), std::string::npos);
}

TEST(WfbnLintRules, R3StaleDocRow) {
  TempTree tree;
  write_clean_fixture(tree);
  std::string doc = kRobustnessMd;
  doc.insert(doc.find("<!-- wfbn-lint:fault-points:end -->"),
             "| `ghost` | manual | never existed |\n");
  tree.write("docs/ROBUSTNESS.md", doc);
  const Result result = run_on(tree);
  const std::vector<Finding> findings = of_rule(result, Rule::kFaultSync);
  ASSERT_EQ(findings.size(), 1u) << describe(result);
  EXPECT_NE(findings[0].message.find("stale fault-point row"), std::string::npos);
}

TEST(WfbnLintRules, R4PolicyPurity) {
  TempTree tree;
  write_clean_fixture(tree);
  const std::string seam =
      "#pragma once\n"
      "#include <mutex>\n"
      "template <typename Policy>\n"
      "class Cell {\n"
      "  typename Policy::template Atomic<int> value_{0};\n"
      "  std::mutex lock_;\n"
      "};\n";
  tree.write("src/concurrent/cell.hpp", seam);
  const Result result = run_on(tree);
  const std::vector<Finding> findings = of_rule(result, Rule::kPolicyPurity);
  ASSERT_EQ(findings.size(), 1u) << describe(result);
  EXPECT_EQ(findings[0].file, "src/concurrent/cell.hpp");
  EXPECT_EQ(findings[0].line, 6);
}

TEST(WfbnLintRules, R5WaitFreeRegionAllocation) {
  TempTree tree;
  write_clean_fixture(tree);
  const std::string hot =
      "#pragma once\n"
      "// wfbn-lint: wait-free-begin\n"
      "inline int* hot_path() {\n"
      "  return new int(42);\n"
      "}\n"
      "// wfbn-lint: wait-free-end\n";
  tree.write("src/core/hot.hpp", hot);
  const Result result = run_on(tree);
  const std::vector<Finding> findings = of_rule(result, Rule::kWaitFreeRegion);
  ASSERT_EQ(findings.size(), 1u) << describe(result);
  EXPECT_EQ(findings[0].file, "src/core/hot.hpp");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(WfbnLintRules, R5LockAcquisitionInRegion) {
  TempTree tree;
  write_clean_fixture(tree);
  const std::string hot =
      "#pragma once\n"
      "// wfbn-lint: wait-free-begin\n"
      "inline void hot_path(M& m) {\n"
      "  m.lock();\n"
      "}\n"
      "// wfbn-lint: wait-free-end\n";
  tree.write("src/core/hot.hpp", hot);
  const Result result = run_on(tree);
  ASSERT_EQ(of_rule(result, Rule::kWaitFreeRegion).size(), 1u) << describe(result);
}

TEST(WfbnLintRules, UnbalancedRegionIsADirectiveFinding) {
  TempTree tree;
  write_clean_fixture(tree);
  tree.write("src/core/hot.hpp",
             "#pragma once\n"
             "// wfbn-lint: wait-free-begin\n"
             "inline void f() {}\n");
  const Result result = run_on(tree);
  const std::vector<Finding> findings = of_rule(result, Rule::kDirective);
  ASSERT_EQ(findings.size(), 1u) << describe(result);
  EXPECT_NE(findings[0].message.find("without a matching"), std::string::npos);
}

// ---- Suppressions ----------------------------------------------------------

TEST(WfbnLintSuppression, AllowOnPreviousLineSuppresses) {
  TempTree tree;
  write_clean_fixture(tree);
  const std::string hot =
      "#pragma once\n"
      "// wfbn-lint: wait-free-begin\n"
      "inline int* hot_path() {\n"
      "  // wfbn-lint: allow(wait-free-region) amortized, measured, documented\n"
      "  return new int(42);\n"
      "}\n"
      "// wfbn-lint: wait-free-end\n";
  tree.write("src/core/hot.hpp", hot);
  const Result result = run_on(tree);
  EXPECT_TRUE(result.findings.empty()) << describe(result);
}

TEST(WfbnLintSuppression, AllowWithoutReasonIsItselfAFinding) {
  TempTree tree;
  write_clean_fixture(tree);
  const std::string hot =
      "#pragma once\n"
      "// wfbn-lint: wait-free-begin\n"
      "inline int* hot_path() {\n"
      "  // wfbn-lint: allow(wait-free-region)\n"
      "  return new int(42);\n"
      "}\n"
      "// wfbn-lint: wait-free-end\n";
  tree.write("src/core/hot.hpp", hot);
  const Result result = run_on(tree);
  // The bare allow is a `directive` finding AND does not suppress.
  ASSERT_EQ(of_rule(result, Rule::kDirective).size(), 1u) << describe(result);
  ASSERT_EQ(of_rule(result, Rule::kWaitFreeRegion).size(), 1u) << describe(result);
}

TEST(WfbnLintSuppression, UnknownRuleNameIsAFinding) {
  TempTree tree;
  write_clean_fixture(tree);
  tree.write("src/core/hot.hpp",
             "#pragma once\n"
             "// wfbn-lint: allow(made-up-rule) because\n"
             "inline void f() {}\n");
  const Result result = run_on(tree);
  ASSERT_EQ(of_rule(result, Rule::kDirective).size(), 1u) << describe(result);
}

// ---- --fix-docs ------------------------------------------------------------

TEST(WfbnLintFixDocs, RegeneratesMissingAuditRow) {
  TempTree tree;
  write_clean_fixture(tree);
  std::string gadget = kGadgetHpp;
  const std::string seeded =
      "  int weak() const { return flag_.load(std::memory_order_relaxed); }\n";
  gadget.insert(gadget.find(" private:"), seeded);
  tree.write("src/concurrent/gadget.hpp", gadget);

  const Result fixed = run_on(tree, /*fix_docs=*/true);
  ASSERT_EQ(fixed.fixed_files.size(), 1u);
  EXPECT_EQ(fixed.fixed_files[0], "docs/ALGORITHMS.md");
  // The structural drift is repaired; what remains is the human's half:
  // the regenerated row carries a placeholder invariant.
  const std::vector<Finding> findings = of_rule(fixed, Rule::kAuditSync);
  ASSERT_EQ(findings.size(), 1u) << describe(fixed);
  EXPECT_NE(findings[0].message.find("placeholder invariant"), std::string::npos);
  // Hand-written invariants of surviving rows are preserved.
  const std::string doc = tree.read("docs/ALGORITHMS.md");
  EXPECT_NE(doc.find("reader inherits the state published by set()"),
            std::string::npos);
  EXPECT_NE(doc.find("`relaxed`"), std::string::npos);
}

TEST(WfbnLintFixDocs, RegeneratesFaultTablePreservingFires) {
  TempTree tree;
  write_clean_fixture(tree);
  std::string hpp = kFaultHpp;
  hpp.insert(hpp.find("};"), "  kGamma,\n");
  tree.write("src/util/fault_injection.hpp", hpp);
  std::string cpp = kFaultCpp;
  cpp.insert(cpp.find("  }\n  return \"unknown\";"),
             "    case Point::kGamma: return \"gamma\";\n");
  tree.write("src/util/fault_injection.cpp", cpp);

  const Result fixed = run_on(tree, /*fix_docs=*/true);
  ASSERT_EQ(fixed.fixed_files.size(), 1u);
  EXPECT_EQ(fixed.fixed_files[0], "docs/ROBUSTNESS.md");
  const std::string doc = tree.read("docs/ROBUSTNESS.md");
  EXPECT_NE(doc.find("| `gamma` | manual |"), std::string::npos) << doc;
  EXPECT_NE(doc.find("fires in the alpha step"), std::string::npos);
  // Remaining finding: the regenerated gamma row needs its Fires prose.
  const std::vector<Finding> findings = of_rule(fixed, Rule::kFaultSync);
  ASSERT_EQ(findings.size(), 1u) << describe(fixed);
  EXPECT_NE(findings[0].message.find("placeholder Fires"), std::string::npos);
}

// ---- Errors ----------------------------------------------------------------

TEST(WfbnLintErrors, MissingRootIsAnIoError) {
  Options options;
  options.root = "/nonexistent/wfbn/root";
  const Result result = wfbn_lint::run(options);
  EXPECT_TRUE(result.io_error);
}

// ---- Mutation self-tests over the real tree --------------------------------
//
// Copy the repository's src/ and docs/ into a temp root, apply ONE mutation,
// and require exactly the expected finding — proving each rule actually
// guards the real artifacts, not just the fixtures.

class RealTreeMutation : public ::testing::Test {
 protected:
  void SetUp() override {
    const fs::path source_root = WFBN_LINT_SOURCE_ROOT;
    ASSERT_TRUE(fs::exists(source_root / "src"));
    fs::copy(source_root / "src", tree_.root() / "src",
             fs::copy_options::recursive);
    fs::copy(source_root / "docs", tree_.root() / "docs",
             fs::copy_options::recursive);
    const Result baseline = run_on(tree_);
    ASSERT_FALSE(baseline.io_error);
    ASSERT_TRUE(baseline.findings.empty())
        << "real tree must lint clean before mutating:\n" << describe(baseline);
  }
  TempTree tree_;
};

TEST_F(RealTreeMutation, DemotedMemoryOrderIsCaught) {
  // The PR-5 bug, re-introduced: demote the snapshot cell's Dekker drain
  // load from seq_cst to acquire. The audit table still records seq_cst.
  tree_.mutate("src/serve/snapshot_cell.hpp",
               "count.load(std::memory_order_seq_cst)",
               "count.load(std::memory_order_acquire)");
  const Result result = run_on(tree_);
  const std::vector<Finding> findings = of_rule(result, Rule::kAuditSync);
  ASSERT_EQ(findings.size(), 2u) << describe(result);
  EXPECT_EQ(result.findings.size(), 2u) << describe(result);
  // One side: the code site has no matching row; other side: the seq_cst
  // row went stale. Both name the demoted object.
  for (const Finding& finding : findings) {
    EXPECT_NE(finding.message.find("count.load"), std::string::npos);
  }
}

TEST_F(RealTreeMutation, DeletedAuditRowIsCaught) {
  std::string doc = tree_.read("docs/ALGORITHMS.md");
  const std::string needle =
      "| `src/concurrent/barrier.hpp` | `sense_` | `store` | `release` |";
  const std::size_t pos = doc.find(needle);
  ASSERT_NE(pos, std::string::npos);
  const std::size_t eol = doc.find('\n', pos);
  doc.erase(pos, eol - pos + 1);
  tree_.write("docs/ALGORITHMS.md", doc);
  const Result result = run_on(tree_);
  ASSERT_EQ(result.findings.size(), 1u) << describe(result);
  EXPECT_EQ(result.findings[0].rule, Rule::kAuditSync);
  EXPECT_EQ(result.findings[0].file, "src/concurrent/barrier.hpp");
  EXPECT_NE(result.findings[0].message.find("sense_.store"), std::string::npos);
}

TEST_F(RealTreeMutation, UnregisteredFaultPointIsCaught) {
  // Remove spsc.chunk_alloc from the random throwing schedule; ROBUSTNESS.md
  // still documents it as `random`.
  tree_.mutate("src/util/fault_injection.cpp", "Point::kSpscChunkAlloc, ", "");
  const Result result = run_on(tree_);
  ASSERT_EQ(result.findings.size(), 1u) << describe(result);
  EXPECT_EQ(result.findings[0].rule, Rule::kFaultSync);
  EXPECT_EQ(result.findings[0].file, "docs/ROBUSTNESS.md");
  EXPECT_NE(result.findings[0].message.find("spsc.chunk_alloc"), std::string::npos);
  EXPECT_NE(result.findings[0].message.find("`manual`"), std::string::npos);
}

TEST_F(RealTreeMutation, BareStdAtomicInSeamFileIsCaught) {
  tree_.mutate("src/concurrent/retire_gate.hpp",
               "typename Policy::template Atomic<std::size_t> done_{0};",
               "std::atomic<std::size_t> done_{0};");
  const Result result = run_on(tree_);
  ASSERT_EQ(result.findings.size(), 1u) << describe(result);
  EXPECT_EQ(result.findings[0].rule, Rule::kPolicyPurity);
  EXPECT_EQ(result.findings[0].file, "src/concurrent/retire_gate.hpp");
}

TEST_F(RealTreeMutation, AllocationInWaitFreeRegionIsCaught) {
  tree_.mutate("src/concurrent/barrier.hpp",
               "const bool my_sense = !sense_.load(std::memory_order_relaxed);",
               "const bool my_sense = !sense_.load(std::memory_order_relaxed);\n"
               "    int* leak = new int(7);");
  const Result result = run_on(tree_);
  ASSERT_EQ(result.findings.size(), 1u) << describe(result);
  EXPECT_EQ(result.findings[0].rule, Rule::kWaitFreeRegion);
  EXPECT_EQ(result.findings[0].file, "src/concurrent/barrier.hpp");
  EXPECT_NE(result.findings[0].message.find("`new`"), std::string::npos);
}

}  // namespace
