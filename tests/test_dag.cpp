// Tests for the DAG and undirected-graph substrate.
#include <gtest/gtest.h>

#include "bn/dag.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

TEST(Dag, AddAndQueryEdges) {
  Dag dag(4);
  EXPECT_TRUE(dag.add_edge(0, 1));
  EXPECT_TRUE(dag.add_edge(1, 2));
  EXPECT_TRUE(dag.has_edge(0, 1));
  EXPECT_FALSE(dag.has_edge(1, 0));
  EXPECT_EQ(dag.edge_count(), 2u);
  EXPECT_FALSE(dag.add_edge(0, 1));  // duplicate
  EXPECT_EQ(dag.edge_count(), 2u);
}

TEST(Dag, RejectsCycles) {
  Dag dag(3);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  EXPECT_TRUE(dag.would_create_cycle(2, 0));
  EXPECT_FALSE(dag.add_edge(2, 0));
  EXPECT_EQ(dag.edge_count(), 2u);
  EXPECT_FALSE(dag.would_create_cycle(0, 2));
  EXPECT_TRUE(dag.add_edge(0, 2));
}

TEST(Dag, RejectsSelfLoopsAndBadNodes) {
  Dag dag(3);
  EXPECT_THROW(dag.add_edge(1, 1), PreconditionError);
  EXPECT_THROW(dag.add_edge(0, 5), PreconditionError);
  EXPECT_THROW((void)dag.has_edge(5, 0), PreconditionError);
}

TEST(Dag, RemoveEdgeMaintainsAdjacency) {
  Dag dag(3);
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  EXPECT_TRUE(dag.remove_edge(0, 1));
  EXPECT_FALSE(dag.remove_edge(0, 1));
  EXPECT_FALSE(dag.has_edge(0, 1));
  EXPECT_EQ(dag.parents(1).size(), 0u);
  EXPECT_EQ(dag.children(0).size(), 1u);
  // Removing re-enables what would have been a cycle.
  EXPECT_TRUE(dag.add_edge(1, 0));
}

TEST(Dag, ParentsAndChildrenTrackEdges) {
  Dag dag(5);
  dag.add_edge(0, 3);
  dag.add_edge(1, 3);
  dag.add_edge(3, 4);
  EXPECT_EQ(dag.parents(3), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(dag.children(3), (std::vector<NodeId>{4}));
  EXPECT_TRUE(dag.parents(0).empty());
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  Dag dag(6);
  dag.add_edge(5, 0);
  dag.add_edge(0, 3);
  dag.add_edge(3, 1);
  dag.add_edge(5, 1);
  dag.add_edge(2, 4);
  const std::vector<NodeId> order = dag.topological_order();
  ASSERT_EQ(order.size(), 6u);
  std::vector<std::size_t> position(6);
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (const Edge& e : dag.edges()) {
    EXPECT_LT(position[e.from], position[e.to]);
  }
}

TEST(Dag, EdgesAreSorted) {
  Dag dag(4);
  dag.add_edge(2, 3);
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  const std::vector<Edge> edges = dag.edges();
  EXPECT_EQ(edges, (std::vector<Edge>{{0, 1}, {0, 2}, {2, 3}}));
}

TEST(Dag, AncestorsOfCollectsTransitively) {
  Dag dag(6);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  dag.add_edge(3, 2);
  dag.add_edge(4, 5);
  const std::vector<bool> anc = dag.ancestors_of({2});
  EXPECT_TRUE(anc[0]);
  EXPECT_TRUE(anc[1]);
  EXPECT_TRUE(anc[3]);
  EXPECT_FALSE(anc[2]);  // not its own ancestor (no path back)
  EXPECT_FALSE(anc[4]);
  EXPECT_FALSE(anc[5]);
}

TEST(Dag, SkeletonDropsDirections) {
  Dag dag(3);
  dag.add_edge(0, 1);
  dag.add_edge(2, 1);
  const UndirectedGraph skeleton = dag.skeleton();
  EXPECT_TRUE(skeleton.has_edge(0, 1));
  EXPECT_TRUE(skeleton.has_edge(1, 0));
  EXPECT_TRUE(skeleton.has_edge(1, 2));
  EXPECT_EQ(skeleton.edge_count(), 2u);
}

TEST(UndirectedGraph, EdgesAreSymmetric) {
  UndirectedGraph g(4);
  EXPECT_TRUE(g.add_edge(0, 2));
  EXPECT_FALSE(g.add_edge(2, 0));  // same edge
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_TRUE(g.remove_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(UndirectedGraph, HasPathFindsIndirectConnections) {
  UndirectedGraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  EXPECT_TRUE(g.has_path(0, 2));
  EXPECT_FALSE(g.has_path(0, 3));
  EXPECT_TRUE(g.has_path(3, 4));
  EXPECT_FALSE(g.has_path(0, 5));
}

TEST(UndirectedGraph, HasPathRespectsBlockedNodes) {
  UndirectedGraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(3, 2);
  std::vector<bool> blocked(5, false);
  blocked[1] = true;
  EXPECT_TRUE(g.has_path(0, 2, &blocked));  // via 3
  blocked[3] = true;
  EXPECT_FALSE(g.has_path(0, 2, &blocked));
  // A direct edge is never blocked.
  g.add_edge(0, 2);
  EXPECT_TRUE(g.has_path(0, 2, &blocked));
}

TEST(UndirectedGraph, NodesOnPathsFindsIntermediaries) {
  //   0 - 1 - 2
  //    \     /
  //     3 --/     4 isolated, 5 pendant off 1, 6 pendant off 0
  UndirectedGraph g(7);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(3, 2);
  g.add_edge(1, 5);
  g.add_edge(0, 6);
  const std::vector<NodeId> on_paths = g.nodes_on_paths(0, 2);
  // 1 and 3 lie on simple 0–2 paths. 5 is included too: the documented
  // contract is an over-approximation (it reaches both endpoints), which is
  // safe for cut-set search. 4 (isolated) and 6 (pendant off the *endpoint*)
  // must be excluded.
  EXPECT_EQ(on_paths, (std::vector<NodeId>{1, 3, 5}));
}

TEST(UndirectedGraph, ComponentsLabelsConnectedPieces) {
  UndirectedGraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const std::vector<std::size_t> label = g.components();
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[1], label[2]);
  EXPECT_EQ(label[3], label[4]);
  EXPECT_NE(label[0], label[3]);
  EXPECT_NE(label[5], label[0]);
  EXPECT_NE(label[5], label[3]);
}

}  // namespace
}  // namespace wfbn
