// Compile-time check that the umbrella header is self-contained and the
// whole public API coexists in one translation unit, plus a lifecycle stress
// test for the thread-pool-per-call pattern the high-level APIs use.
#include "wfbn.hpp"

#include <gtest/gtest.h>

namespace wfbn {
namespace {

TEST(Umbrella, WholeApiIsUsableFromOneInclude) {
  const Dataset data = generate_chain_correlated(4000, 5, 2, 0.8, 801);
  WaitFreeBuilderOptions options;
  options.threads = 2;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  const MiMatrix mi =
      AllPairsMi(AllPairsOptions{2, AllPairsStrategy::kFused}).compute(table);
  EXPECT_GT(mi.at(0, 1), 0.0);
  const ChengResult learned = ChengLearner().learn(table);
  EXPECT_GE(learned.skeleton.edge_count(), 1u);
  const BayesianNetwork asia = load_network(RepositoryNetwork::kAsia);
  EXPECT_TRUE(asia.validate());
}

TEST(Umbrella, RepeatedPoolLifecyclesDoNotLeak) {
  // Every high-level call spins up and tears down a ThreadPool; hammer that
  // path to catch thread/file-descriptor leaks or shutdown races.
  const Dataset data = generate_uniform(2000, 6, 2, 802);
  for (int round = 0; round < 150; ++round) {
    WaitFreeBuilderOptions options;
    options.threads = 1 + static_cast<std::size_t>(round % 8);
    WaitFreeBuilder builder(options);
    const PotentialTable table = builder.build(data);
    ASSERT_EQ(table.partitions().total_count(), 2000u);
  }
  SUCCEED();
}

TEST(Umbrella, ManyWorkerPoolOnOneCoreStillCorrect) {
  // 64 workers on however many cores the host has.
  const Dataset data = generate_uniform(5000, 8, 2, 803);
  ThreadPool pool(64);
  WaitFreeBuilder builder;
  const PotentialTable table = builder.build(data, pool);
  EXPECT_EQ(table.partitions().partition_count(), 64u);
  EXPECT_EQ(table.partitions().total_count(), 5000u);
  EXPECT_TRUE(table.partitions().ownership_invariant_holds());
}

}  // namespace
}  // namespace wfbn
