// Tests for the serving layer (src/serve): the versioned snapshot store, the
// sharded result cache, and the ServeEngine front end.
//
// The three contracts under test mirror docs/SERVING.md:
//  1. Publication atomicity — a reader concurrent with any number of
//     publishes only ever observes complete versions, never a torn or
//     partially appended table.
//  2. Cache transparency — cached answers are byte-identical to an uncached
//     QueryEngine over the same snapshot, across version bumps.
//  3. Failure semantics — a failed publish (injected or real) leaves the
//     served version untouched and retryable; a failed cache insert degrades
//     to an uncached (still correct) answer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>
#include <vector>

#include "core/info_theory.hpp"
#include "core/query.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "serve/persist/durable_store.hpp"
#include "serve/persist/format.hpp"
#include "serve/persist/snapshot_reader.hpp"
#include "serve/persist/snapshot_writer.hpp"
#include "serve/serve_engine.hpp"
#include "serve/table_store.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace wfbn {
namespace {

using serve::CacheStats;
using serve::IngestStats;
using serve::QueryKind;
using serve::ServeEngine;
using serve::ServeOptions;
using serve::ServeQuery;
using serve::ServeResult;
using serve::SnapshotPtr;
using serve::TableStore;

PotentialTable build(const Dataset& data, std::size_t threads = 4) {
  WaitFreeBuilderOptions options;
  options.threads = threads;
  WaitFreeBuilder builder(options);
  return builder.build(data);
}

std::map<Key, std::uint64_t> key_counts(const Dataset& data) {
  const KeyCodec codec = data.codec();
  std::map<Key, std::uint64_t> counts;
  for (std::size_t i = 0; i < data.sample_count(); ++i) {
    ++counts[codec.encode(data.row(i))];
  }
  return counts;
}

std::map<Key, std::uint64_t> table_counts(const PotentialTable& table) {
  std::map<Key, std::uint64_t> counts;
  table.partitions().for_each(
      [&](Key key, std::uint64_t c) { counts[key] += c; });
  return counts;
}

/// Exact bytewise equality of two double vectors (the cache-transparency
/// contract is bit-identical answers, not approximately-equal ones).
bool bytes_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(TableStore, InitialSnapshotIsVersionOne) {
  const Dataset data = generate_uniform(2000, 8, 2, 0x51);
  TableStore store(build(data));
  const SnapshotPtr snap = store.current();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version(), 1u);
  EXPECT_EQ(store.version(), 1u);
  EXPECT_EQ(store.published_count(), 1u);
  EXPECT_EQ(table_counts(snap->table()), key_counts(data));
}

TEST(TableStore, IngestPublishesNextVersionAndPinsOldOnes) {
  const Dataset base = generate_uniform(2000, 8, 2, 0x52);
  const Dataset batch1 = generate_uniform(1500, 8, 2, 0x53);
  const Dataset batch2 = generate_uniform(1000, 8, 2, 0x54);
  TableStore store(build(base));

  // A reader that pinned version 1 keeps an intact version 1 across both
  // publishes — that is the whole point of snapshot serving.
  const SnapshotPtr pinned = store.current();
  const auto base_reference = key_counts(base);

  const IngestStats s1 = store.ingest(batch1);
  EXPECT_EQ(s1.published_version, 2u);
  EXPECT_EQ(s1.batch_rows, batch1.sample_count());
  const IngestStats s2 = store.ingest(batch2);
  EXPECT_EQ(s2.published_version, 3u);
  EXPECT_EQ(store.version(), 3u);
  EXPECT_EQ(store.published_count(), 3u);

  std::map<Key, std::uint64_t> combined = base_reference;
  for (const auto& [key, c] : key_counts(batch1)) combined[key] += c;
  for (const auto& [key, c] : key_counts(batch2)) combined[key] += c;
  EXPECT_EQ(table_counts(store.current()->table()), combined);
  EXPECT_EQ(store.current()->table().sample_count(),
            base.sample_count() + batch1.sample_count() + batch2.sample_count());

  EXPECT_EQ(pinned->version(), 1u);
  EXPECT_EQ(table_counts(pinned->table()), base_reference);
}

TEST(TableStore, IngestRejectsMismatchedBatchWithoutPublishing) {
  const Dataset base = generate_uniform(2000, 8, 2, 0x55);
  TableStore store(build(base));
  const Dataset wrong_arity = generate_uniform(500, 9, 2, 0x56);
  EXPECT_THROW((void)store.ingest(wrong_arity), DataError);
  EXPECT_EQ(store.version(), 1u);
  EXPECT_EQ(table_counts(store.current()->table()), key_counts(base));
}

// Contract 1: concurrent readers during a stream of >= 8 publishes observe
// only fully published versions. Completeness oracle: for version v the
// sample count must be exactly m0 + (v-1)·mb, and the partition counts must
// sum to the sample count (a torn/partial fold would break either). Run under
// TSan this also proves the publish edge orders the shadow fold's writes.
TEST(TableStore, ConcurrentReadersSeeOnlyCompleteVersions) {
  constexpr std::size_t kBaseRows = 1500;
  constexpr std::size_t kBatchRows = 800;
  constexpr std::size_t kBatches = 8;
  constexpr std::size_t kReaders = 3;

  const Dataset base = generate_uniform(kBaseRows, 8, 2, 0x61);
  TableStore store(build(base));

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> observations{0};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_version = 0;
      while (!done.load(std::memory_order_acquire)) {
        const SnapshotPtr snap = store.current();
        const std::uint64_t v = snap->version();
        const std::uint64_t expected_m =
            kBaseRows + (v - 1) * static_cast<std::uint64_t>(kBatchRows);
        if (v < last_version || v > kBatches + 1 ||
            snap->table().sample_count() != expected_m ||
            snap->table().partitions().total_count() != expected_m) {
          violations.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        last_version = v;
        observations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::size_t b = 0; b < kBatches; ++b) {
    const Dataset batch = generate_uniform(kBatchRows, 8, 2, 0x62 + b);
    const IngestStats stats = store.ingest(batch);
    EXPECT_EQ(stats.published_version, b + 2);
    // Give readers a beat on single-core hosts so they actually interleave
    // with distinct versions instead of only seeing the final one.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(observations.load(), 0u);
  EXPECT_EQ(store.version(), kBatches + 1);
}

// Contract 2: every cached answer is byte-identical to an uncached
// QueryEngine over the same table, and repeated queries are served from the
// cache.
TEST(ServeEngine, CachedAnswersMatchUncachedQueryEngine) {
  const Dataset data = generate_chain_correlated(6000, 8, 2, 0.8, 0x71);
  TableStore store(build(data));
  ServeEngine engine(store);
  const QueryEngine reference(store.current()->table(), 1);

  const std::vector<std::vector<std::size_t>> marginals = {
      {0}, {3}, {0, 1}, {2, 5}, {0, 1, 2}};
  const std::vector<Evidence> evidence = {{1, 0}};

  for (int round = 0; round < 2; ++round) {
    const bool expect_hit = round == 1;
    for (const std::vector<std::size_t>& vars : marginals) {
      const ServeResult served = engine.marginal(vars);
      EXPECT_EQ(served.version, 1u);
      EXPECT_EQ(served.cache_hit, expect_hit);
      EXPECT_TRUE(bytes_equal(served.values, reference.marginal(vars)));
    }
    const std::size_t cond_vars[] = {0};
    const ServeResult cond = engine.conditional(cond_vars, evidence);
    EXPECT_EQ(cond.cache_hit, expect_hit);
    EXPECT_TRUE(bytes_equal(cond.values,
                            reference.conditional(cond_vars, evidence)));
    const ServeResult mi = engine.pair_mi(0, 1);
    EXPECT_EQ(mi.cache_hit, expect_hit);
    ASSERT_EQ(mi.values.size(), 1u);
    const std::size_t pair[] = {0, 1};
    const double expected_mi = mutual_information(
        store.current()->table().marginalize_sequential(pair));
    EXPECT_EQ(mi.values[0], expected_mi);
  }

  const CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, marginals.size() + 2);
  EXPECT_EQ(stats.misses, marginals.size() + 2);
  EXPECT_EQ(stats.insertions, marginals.size() + 2);
}

TEST(ServeEngine, PublishInvalidatesAndRecomputesAgainstNewVersion) {
  const Dataset base = generate_chain_correlated(4000, 8, 2, 0.8, 0x72);
  const Dataset batch = generate_chain_correlated(4000, 8, 2, 0.8, 0x73);
  TableStore store(build(base));
  ServeEngine engine(store);

  const std::size_t vars[] = {0, 1};
  const ServeResult before = engine.marginal(vars);
  EXPECT_EQ(before.version, 1u);
  EXPECT_FALSE(before.cache_hit);
  EXPECT_TRUE(engine.marginal(vars).cache_hit);

  const IngestStats ingest = engine.ingest(batch);
  EXPECT_EQ(ingest.published_version, 2u);
  EXPECT_GT(engine.cache_stats().invalidated_entries, 0u);

  const ServeResult after = engine.marginal(vars);
  EXPECT_EQ(after.version, 2u);
  EXPECT_FALSE(after.cache_hit);  // version bump ⇒ the old entry cannot serve
  const QueryEngine reference(store.current()->table(), 1);
  EXPECT_TRUE(bytes_equal(after.values, reference.marginal(vars)));
  // The distributions genuinely differ between versions for this workload.
  EXPECT_FALSE(bytes_equal(before.values, after.values));
  EXPECT_TRUE(engine.marginal(vars).cache_hit);
}

TEST(ServeEngine, ZeroSupportEvidenceThrowsAndIsNeverCached) {
  // Two constant rows: evidence X0=1 has zero support.
  std::vector<State> cells = {0, 0, 0, 0};
  const Dataset data(2, {2, 2}, std::move(cells));
  TableStore store(build(data, 1));
  ServeEngine engine(store);
  const std::size_t vars[] = {1};
  const std::vector<Evidence> impossible = {{0, 1}};
  EXPECT_THROW((void)engine.conditional(vars, impossible), DataError);
  EXPECT_THROW((void)engine.conditional(vars, impossible), DataError);
  EXPECT_EQ(engine.cache_stats().insertions, 0u);
}

TEST(ServeEngine, ServeBatchDispatchesMixedWorkloadAcrossPool) {
  const Dataset data = generate_chain_correlated(5000, 8, 2, 0.8, 0x74);
  TableStore store(build(data));
  ServeEngine engine(store);
  const QueryEngine reference(store.current()->table(), 1);

  std::vector<ServeQuery> queries;
  queries.push_back({QueryKind::kMarginal, {0}, {}});
  queries.push_back({QueryKind::kMarginal, {1, 2}, {}});
  queries.push_back({QueryKind::kConditional, {0}, {Evidence{1, 0}}});
  queries.push_back({QueryKind::kPairMi, {0, 1}, {}});
  queries.push_back({QueryKind::kMarginal, {0}, {}});  // repeat of [0]
  // An invalid query must fail alone, not abort the batch.
  queries.push_back({QueryKind::kConditional, {0}, {Evidence{9, 0}}});

  ThreadPool pool(4);
  const std::vector<ServeResult> results = engine.serve_batch(queries, pool);
  ASSERT_EQ(results.size(), queries.size());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(results[i].ok) << "query " << i << ": " << results[i].error;
    EXPECT_EQ(results[i].version, 1u);
  }
  EXPECT_TRUE(bytes_equal(results[0].values, reference.marginal(queries[0].variables)));
  EXPECT_TRUE(bytes_equal(results[1].values, reference.marginal(queries[1].variables)));
  EXPECT_TRUE(bytes_equal(
      results[2].values,
      reference.conditional(queries[2].variables, queries[2].evidence)));
  EXPECT_TRUE(bytes_equal(results[4].values, results[0].values));
  EXPECT_FALSE(results[5].ok);
  EXPECT_FALSE(results[5].error.empty());
}

// Contract 3a: an injected fault at the publish point aborts the ingest
// without changing the served snapshot, and the ingest is retryable.
TEST(ServeFaults, FailedPublishLeavesServedVersionUntouchedAndRetryable) {
  const Dataset base = generate_uniform(3000, 8, 2, 0x81);
  const Dataset batch = generate_uniform(2000, 8, 2, 0x82);
  TableStore store(build(base));
  const auto base_reference = key_counts(base);

  fault::ScopedFaultInjection injection;
  fault::arm(fault::Point::kServePublish, 1);
  EXPECT_THROW((void)store.ingest(batch), InjectedFault);
  EXPECT_EQ(store.version(), 1u);
  EXPECT_EQ(store.published_count(), 1u);
  EXPECT_EQ(table_counts(store.current()->table()), base_reference);
  EXPECT_TRUE(store.current()->table().validate());

  // Retry with the schedule cleared: the same batch publishes cleanly.
  fault::reset();
  const IngestStats stats = store.ingest(batch);
  EXPECT_EQ(stats.published_version, 2u);
  std::map<Key, std::uint64_t> combined = base_reference;
  for (const auto& [key, c] : key_counts(batch)) combined[key] += c;
  EXPECT_EQ(table_counts(store.current()->table()), combined);
}

// Contract 3b: a cache-insert fault degrades to an uncached answer — the
// query still succeeds with the exact value, it is just recomputed next time.
TEST(ServeFaults, CacheInsertFaultDegradesToUncachedAnswer) {
  const Dataset data = generate_uniform(3000, 8, 2, 0x83);
  TableStore store(build(data));
  ServeEngine engine(store);
  const QueryEngine reference(store.current()->table(), 1);
  const std::size_t vars[] = {0, 1};

  fault::ScopedFaultInjection injection;
  fault::arm(fault::Point::kServeCache, 1);
  const ServeResult dropped = engine.marginal(vars);
  EXPECT_FALSE(dropped.cache_hit);
  EXPECT_TRUE(bytes_equal(dropped.values, reference.marginal(vars)));
  EXPECT_EQ(engine.cache_stats().dropped_inserts, 1u);
  EXPECT_EQ(engine.cache_stats().insertions, 0u);

  // The armed hit has fired; subsequent inserts land and hits resume.
  const ServeResult recomputed = engine.marginal(vars);
  EXPECT_FALSE(recomputed.cache_hit);
  EXPECT_TRUE(bytes_equal(recomputed.values, dropped.values));
  EXPECT_TRUE(engine.marginal(vars).cache_hit);
}

// Contract 3 under randomized schedules (the PR 1 fuzz harness pointed at the
// ingest/publish path): any schedule either publishes the exact combined
// table or throws a typed error with the served snapshot bit-identical to the
// pre-ingest state. Interleaved queries must always match an uncached engine
// over whatever version is being served.
TEST(ServeFaults, RandomFaultSchedulesThroughIngestPublishPath) {
  const Dataset base = generate_uniform(2500, 8, 2, 0x91);
  std::vector<Dataset> batches;
  for (std::uint64_t b = 0; b < 4; ++b) {
    batches.push_back(generate_uniform(1200, 8, 2, 0x92 + b));
  }

  WaitFreeBuilderOptions ingest_options;
  ingest_options.threads = 4;
  TableStore store(build(base), ingest_options);
  ServeEngine engine(store);

  std::map<Key, std::uint64_t> expected = key_counts(base);
  std::uint64_t expected_version = 1;
  Xoshiro256 meta_rng(0xFA03);
  int published = 0, faulted = 0;

  for (std::uint64_t round = 0; round < 60; ++round) {
    const Dataset& batch = batches[round % batches.size()];

    fault::ScopedFaultInjection injection;
    const std::string schedule = fault::arm_random_schedule(meta_rng());
    SCOPED_TRACE("round " + std::to_string(round) + " schedule={" + schedule +
                 "}");
    try {
      const IngestStats stats = engine.ingest(batch);
      ++expected_version;
      for (const auto& [key, c] : key_counts(batch)) expected[key] += c;
      ASSERT_EQ(stats.published_version, expected_version);
      ++published;
    } catch (const InjectedFault&) {
      ++faulted;
    }
    // Whatever happened, the served snapshot is exactly the expected state.
    const SnapshotPtr snap = store.current();
    ASSERT_EQ(snap->version(), expected_version);
    ASSERT_EQ(table_counts(snap->table()), expected);
    ASSERT_TRUE(snap->table().validate());

    // And a query through the (fault-armed!) serving path matches an
    // uncached reference engine bit for bit.
    const std::size_t vars[] = {round % 8};
    const ServeResult served = engine.marginal(vars);
    ASSERT_EQ(served.version, expected_version);
    ASSERT_TRUE(bytes_equal(served.values,
                            QueryEngine(snap->table(), 1).marginal(vars)));
  }
  EXPECT_GT(published, 0);
  EXPECT_GT(faulted, 0) << published << " published";
}

// ------------------------------------------------------- wide-key serving

// The key-trait-templated serve stack makes the same contracts hold past the
// 64-bit key limit: these round-trips run at n = 100 binary variables
// (joint state space 2^100), where narrow keys cannot even encode a row.

WidePotentialTable wide_build(const Dataset& data, std::size_t threads = 4) {
  WideBuilderOptions options;
  options.threads = threads;
  return WideWaitFreeBuilder(options).build(data);
}

// Contract 1 at wide keys: concurrent readers over a WideTableStore observe
// only complete versions (same completeness oracle as the narrow test).
TEST(WideTableStore, ConcurrentReadersSeeOnlyCompleteVersions) {
  constexpr std::size_t kBaseRows = 1200;
  constexpr std::size_t kBatchRows = 600;
  constexpr std::size_t kBatches = 6;
  constexpr std::size_t kReaders = 3;

  const Dataset base = generate_chain_correlated(kBaseRows, 100, 2, 0.8, 0xA1);
  serve::WideTableStore store(wide_build(base));
  EXPECT_EQ(store.version(), 1u);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> observations{0};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_version = 0;
      while (!done.load(std::memory_order_acquire)) {
        const serve::WideSnapshotPtr snap = store.current();
        const std::uint64_t v = snap->version();
        const std::uint64_t expected_m =
            kBaseRows + (v - 1) * static_cast<std::uint64_t>(kBatchRows);
        if (v < last_version || v > kBatches + 1 ||
            snap->table().sample_count() != expected_m ||
            snap->table().total_count() != expected_m) {
          violations.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        last_version = v;
        observations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::size_t b = 0; b < kBatches; ++b) {
    const Dataset batch =
        generate_chain_correlated(kBatchRows, 100, 2, 0.8, 0xA2 + b);
    const IngestStats stats = store.ingest(batch);
    EXPECT_EQ(stats.published_version, b + 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(observations.load(), 0u);
  EXPECT_EQ(store.version(), kBatches + 1);
}

// Contract 2 at wide keys: every cached wide answer is byte-identical to an
// uncached WideQueryEngine over the same snapshot, across the full query mix
// (marginal, conditional, pair MI) — including a pair straddling the word
// boundary of the two-word codec.
TEST(WideServeEngine, CachedWideAnswersMatchUncached) {
  const Dataset data = generate_chain_correlated(4000, 100, 2, 0.8, 0xB1);
  serve::WideTableStore store(wide_build(data));
  serve::WideServeEngine engine(store);
  const WideQueryEngine reference(store.current()->table(), 1);

  const std::vector<std::vector<std::size_t>> marginals = {
      {0}, {50}, {99}, {0, 99}, {62, 63}};  // {62,63} spans the word boundary
  const std::vector<Evidence> evidence = {{1, 0}};

  for (int round = 0; round < 2; ++round) {
    const bool expect_hit = round == 1;
    for (const std::vector<std::size_t>& vars : marginals) {
      const ServeResult served = engine.marginal(vars);
      EXPECT_EQ(served.version, 1u);
      EXPECT_EQ(served.cache_hit, expect_hit);
      EXPECT_TRUE(bytes_equal(served.values, reference.marginal(vars)));
    }
    const std::size_t cond_vars[] = {0};
    const ServeResult cond = engine.conditional(cond_vars, evidence);
    EXPECT_EQ(cond.cache_hit, expect_hit);
    EXPECT_TRUE(bytes_equal(cond.values,
                            reference.conditional(cond_vars, evidence)));
    const ServeResult mi = engine.pair_mi(62, 63);
    EXPECT_EQ(mi.cache_hit, expect_hit);
    ASSERT_EQ(mi.values.size(), 1u);
    const std::size_t pair[] = {62, 63};
    EXPECT_EQ(mi.values[0],
              mutual_information(
                  store.current()->table().marginalize_sequential(pair)));
  }

  const CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, marginals.size() + 2);
  EXPECT_EQ(stats.misses, marginals.size() + 2);
}

// Round-trip across a publish: the version bump invalidates wide cached
// answers and recomputation matches an uncached engine over the new snapshot.
TEST(WideServeEngine, PublishInvalidatesAndRecomputesWideAnswers) {
  const Dataset base = generate_chain_correlated(2500, 100, 2, 0.8, 0xB2);
  const Dataset batch = generate_chain_correlated(2500, 100, 2, 0.8, 0xB3);
  serve::WideTableStore store(wide_build(base));
  serve::WideServeEngine engine(store);

  const std::size_t vars[] = {62, 63};
  const ServeResult before = engine.marginal(vars);
  EXPECT_EQ(before.version, 1u);
  EXPECT_TRUE(engine.marginal(vars).cache_hit);

  const IngestStats ingest = engine.ingest(batch);
  EXPECT_EQ(ingest.published_version, 2u);
  EXPECT_EQ(store.current()->table().sample_count(),
            base.sample_count() + batch.sample_count());

  const ServeResult after = engine.marginal(vars);
  EXPECT_EQ(after.version, 2u);
  EXPECT_FALSE(after.cache_hit);
  const WideQueryEngine reference(store.current()->table(), 1);
  EXPECT_TRUE(bytes_equal(after.values, reference.marginal(vars)));
  EXPECT_TRUE(engine.marginal(vars).cache_hit);
}

// Contract 3 at wide keys: a failed wide publish leaves the served version
// untouched and retryable (the strong guarantee the unified kernel threads
// through both widths).
TEST(WideServeFaults, FailedWidePublishLeavesServedVersionUntouched) {
  const Dataset base = generate_chain_correlated(2000, 100, 2, 0.8, 0xC1);
  const Dataset batch = generate_chain_correlated(1500, 100, 2, 0.8, 0xC2);
  serve::WideTableStore store(wide_build(base));

  fault::ScopedFaultInjection injection;
  fault::arm(fault::Point::kServePublish, 1);
  EXPECT_THROW((void)store.ingest(batch), InjectedFault);
  EXPECT_EQ(store.version(), 1u);
  EXPECT_EQ(store.current()->table().sample_count(), base.sample_count());
  EXPECT_TRUE(store.current()->table().validate());

  fault::reset();
  const IngestStats stats = store.ingest(batch);
  EXPECT_EQ(stats.published_version, 2u);
  EXPECT_EQ(store.current()->table().sample_count(),
            base.sample_count() + batch.sample_count());
}

TEST(ResultCache, EvictionReclaimsSupersededVersionsFirst) {
  serve::ResultCache cache(1, 4);  // one shard, tiny capacity
  auto key = [](std::uint64_t version, std::uint64_t payload) {
    return serve::CacheKey({version, payload});
  };
  for (std::uint64_t p = 0; p < 4; ++p) {
    cache.insert(key(1, p), {static_cast<double>(p)});
  }
  EXPECT_EQ(cache.entry_count(), 4u);
  // The shard is full; inserting a version-2 key evicts the stale entries.
  cache.insert(key(2, 0), {42.0});
  EXPECT_EQ(cache.entry_count(), 1u);
  ASSERT_TRUE(cache.lookup(key(2, 0)).has_value());
  EXPECT_EQ(cache.stats().evicted_entries, 4u);
  EXPECT_FALSE(cache.lookup(key(1, 0)).has_value());
}

// ---------------------------------------------------------------- recovery
// Edge cases at the seam between the serving layer and the durability layer
// (the persist subsystem's own tests live in test_persist.cpp).

namespace persist = serve::persist;

std::filesystem::path recovery_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("wfbn_serve_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(ServeRecovery, EmptyStoreDirectoryIsAFreshStartNotAnError) {
  const std::filesystem::path dir = recovery_dir("empty");
  const auto recovery = persist::recover_store_dir<Key>(dir);
  EXPECT_FALSE(recovery.table.has_value());
  EXPECT_EQ(recovery.report.recovered_version, 0u);
  EXPECT_FALSE(recovery.report.manifest_valid);
  EXPECT_EQ(recovery.report.segments_scanned, 0u);
  EXPECT_TRUE(recovery.report.rejected.empty());
  // A directory that does not exist at all degrades the same way.
  const auto missing =
      persist::recover_store_dir<Key>(dir / "never_created");
  EXPECT_FALSE(missing.table.has_value());
  EXPECT_EQ(missing.report.recovered_version, 0u);
}

TEST(ServeRecovery, ManifestNamingMissingSegmentFallsBackToNewestPresent) {
  const Dataset data = generate_chain_correlated(3000, 8, 2, 0.8, 0xC1);
  const PotentialTable table = build(data);
  const std::filesystem::path dir = recovery_dir("missing_segment");
  persist::SnapshotWriter writer(dir);
  writer.write(serve::Snapshot(table, 1));
  writer.write(serve::Snapshot(table, 2));  // manifest now names version 2
  ASSERT_TRUE(std::filesystem::remove(dir / persist::segment_name(2)));

  const auto recovery = persist::recover_store_dir<Key>(dir);
  ASSERT_TRUE(recovery.table.has_value());
  EXPECT_EQ(recovery.report.recovered_version, 1u);
  EXPECT_TRUE(recovery.report.manifest_valid);
  EXPECT_EQ(recovery.report.manifest_version, 2u);
  ASSERT_FALSE(recovery.report.rejected.empty());
  EXPECT_EQ(recovery.report.rejected.front().version, 2u);
  EXPECT_EQ(recovery.report.rejected.front().reason,
            "manifest names a missing segment");
  EXPECT_EQ(table_counts(*recovery.table), table_counts(table));
}

TEST(ServeRecovery, BitFlipMidSectionIsRejectedAndFallsBackOneVersion) {
  const Dataset base = generate_chain_correlated(3000, 8, 2, 0.8, 0xC2);
  const Dataset more = generate_chain_correlated(5000, 8, 2, 0.8, 0xC3);
  const PotentialTable t1 = build(base);
  const PotentialTable t2 = build(more);
  const std::filesystem::path dir = recovery_dir("bit_flip");
  persist::SnapshotWriter writer(dir);
  writer.write(serve::Snapshot(t1, 1));
  writer.write(serve::Snapshot(t2, 2));

  // Flip one bit deep inside the newest segment's entry data. The section
  // checksum must catch it; recovery must fall back to version 1 rather
  // than serve a silently-wrong count table.
  const std::filesystem::path victim = dir / persist::segment_name(2);
  std::fstream file(victim,
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.is_open());
  file.seekg(0, std::ios::end);
  const auto size = static_cast<std::int64_t>(file.tellg());
  const std::int64_t offset = (size * 3) / 4;  // well past the header
  file.seekg(offset);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x10);
  file.seekp(offset);
  file.write(&byte, 1);
  file.close();

  const auto recovery = persist::recover_store_dir<Key>(dir);
  ASSERT_TRUE(recovery.table.has_value());
  EXPECT_EQ(recovery.report.recovered_version, 1u);
  ASSERT_FALSE(recovery.report.rejected.empty());
  EXPECT_EQ(recovery.report.rejected.front().version, 2u);
  EXPECT_EQ(table_counts(*recovery.table), table_counts(t1));
  EXPECT_TRUE(recovery.table->validate());
}

TEST(ServeRecovery, WideKeyRoundTripThroughPersistAndRecover) {
  const Dataset data = generate_chain_correlated(3000, 100, 2, 0.8, 0xC4);
  const WidePotentialTable table = wide_build(data);
  const std::filesystem::path dir = recovery_dir("wide_rt");
  persist::WideSnapshotWriter writer(dir);
  writer.write(serve::WideSnapshot(table, 3));

  const auto recovery = persist::recover_store_dir<WideKey>(dir);
  ASSERT_TRUE(recovery.table.has_value());
  EXPECT_EQ(recovery.report.recovered_version, 3u);
  EXPECT_EQ(recovery.table->sample_count(), table.sample_count());
  EXPECT_EQ(recovery.table->distinct_keys(), table.distinct_keys());
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> expected;
  table.partitions().for_each([&](WideKey key, std::uint64_t c) {
    expected[{key.lo, key.hi}] += c;
  });
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> actual;
  recovery.table->partitions().for_each([&](WideKey key, std::uint64_t c) {
    actual[{key.lo, key.hi}] += c;
  });
  EXPECT_EQ(actual, expected);
  EXPECT_TRUE(recovery.table->validate());
}

TEST(ServeRecovery, AsyncPersistNeverBlocksWaitFreeReaders) {
  // The durability wrapper must leave the wait-free read/publish contract
  // untouched: readers spin on current() across async persists and must
  // only ever observe complete, monotonically-versioned snapshots.
  const Dataset base = generate_chain_correlated(2000, 8, 2, 0.8, 0xC5);
  const Dataset batch = generate_chain_correlated(500, 8, 2, 0.8, 0xC6);
  const std::filesystem::path dir = recovery_dir("readers");
  persist::DurableTableStore store(dir, build(base));

  constexpr int kReaders = 4;
  constexpr int kIngests = 6;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> observed_torn{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_version = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const SnapshotPtr snap = store.current();
        if (snap->version() < last_version ||
            snap->table().total_count() != snap->table().sample_count()) {
          observed_torn.fetch_add(1, std::memory_order_relaxed);
        }
        last_version = snap->version();
      }
    });
  }
  for (int i = 0; i < kIngests; ++i) (void)store.ingest(batch);
  EXPECT_TRUE(store.flush());
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(observed_torn.load(), 0u);
  EXPECT_EQ(store.version(), static_cast<std::uint64_t>(kIngests) + 1);
  EXPECT_EQ(store.last_durable_version(), store.version());
  EXPECT_EQ(store.persist_stats().failures, 0u);
}

}  // namespace
}  // namespace wfbn
