// Tests for the adoption-layer extensions: random DAG generators, continuous
// discretization, and bootstrap edge confidence.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "bn/network.hpp"
#include "bn/random_dag.hpp"
#include "bn/sampling.hpp"
#include "data/discretize.hpp"
#include "data/generators.hpp"
#include "learn/bootstrap.hpp"
#include "learn/cheng.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

// ----------------------------------------------------------------- random DAG

TEST(RandomDag, ErdosRespectsDensity) {
  Xoshiro256 rng(601);
  const Dag dense = random_dag_erdos(20, 0.5, rng);
  const Dag sparse = random_dag_erdos(20, 0.05, rng);
  const std::size_t max_edges = 20 * 19 / 2;
  EXPECT_NEAR(static_cast<double>(dense.edge_count()),
              0.5 * static_cast<double>(max_edges), 30.0);
  EXPECT_LT(sparse.edge_count(), dense.edge_count());
  EXPECT_EQ(dense.topological_order().size(), 20u);
}

TEST(RandomDag, ErdosExtremes) {
  Xoshiro256 rng(602);
  EXPECT_EQ(random_dag_erdos(10, 0.0, rng).edge_count(), 0u);
  EXPECT_EQ(random_dag_erdos(10, 1.0, rng).edge_count(), 45u);
  EXPECT_THROW(random_dag_erdos(10, 1.5, rng), PreconditionError);
}

TEST(RandomDag, PreferentialIsAcyclicAndBounded) {
  Xoshiro256 rng(603);
  const Dag dag = random_dag_preferential(50, 2, rng);
  EXPECT_EQ(dag.topological_order().size(), 50u);
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_LE(dag.parents(v).size(), 2u);
  }
  EXPECT_GE(dag.edge_count(), 49u / 2);  // every node ≥ 1 parent attempt
}

TEST(RandomDag, PreferentialGrowsHubs) {
  Xoshiro256 rng(604);
  const Dag dag = random_dag_preferential(200, 2, rng);
  std::size_t max_out = 0;
  for (NodeId v = 0; v < 200; ++v) {
    max_out = std::max(max_out, dag.children(v).size());
  }
  // Preferential attachment concentrates out-degree far above uniform (~2).
  EXPECT_GE(max_out, 8u);
}

TEST(RandomDag, FixedEdgesIsExact) {
  Xoshiro256 rng(605);
  const Dag dag = random_dag_fixed_edges(12, 20, rng);
  EXPECT_EQ(dag.edge_count(), 20u);
  EXPECT_EQ(dag.topological_order().size(), 12u);
  EXPECT_THROW(random_dag_fixed_edges(4, 7, rng), PreconditionError);
}

TEST(RandomDag, DeterministicInRngState) {
  Xoshiro256 a(606);
  Xoshiro256 b(606);
  EXPECT_EQ(random_dag_erdos(15, 0.3, a).edges(),
            random_dag_erdos(15, 0.3, b).edges());
}

// --------------------------------------------------------------- discretizer

TEST(Discretize, EqualWidthBinsSplitTheRange) {
  // Column 0: values 0..9 → 2 bins split at 4.5.
  std::vector<double> values;
  for (int i = 0; i < 10; ++i) values.push_back(i);
  DiscretizeOptions options;
  options.method = DiscretizeMethod::kEqualWidth;
  options.bins = 2;
  const Dataset data = discretize(values, 10, 1, options);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(data.at(i, 0), i < 5 ? 0 : 1) << "row " << i;
  }
  EXPECT_EQ(data.cardinalities(), std::vector<std::uint32_t>{2});
}

TEST(Discretize, EqualFrequencyBalancesCounts) {
  // Heavily skewed values: equal-frequency must still split ~evenly.
  std::vector<double> values;
  Xoshiro256 rng(607);
  for (int i = 0; i < 9000; ++i) {
    values.push_back(std::pow(rng.uniform01(), 4.0));  // mass near 0
  }
  DiscretizeOptions options;
  options.method = DiscretizeMethod::kEqualFrequency;
  options.bins = 3;
  const Dataset data = discretize(values, 9000, 1, options);
  std::vector<int> histogram(3, 0);
  for (std::size_t i = 0; i < 9000; ++i) ++histogram[data.at(i, 0)];
  for (const int h : histogram) EXPECT_NEAR(h, 3000, 200);
}

TEST(Discretize, FitTransformSeparationClampsOutOfRange) {
  const std::vector<double> train = {0.0, 1.0, 2.0, 3.0};
  const DiscretizationModel model =
      fit_discretizer(train, 4, 1,
                      {DiscretizeMethod::kEqualWidth, 2});  // cut at 1.5
  const std::vector<double> test = {-100.0, 100.0, 1.0};
  const Dataset data = discretize(model, test, 3, 1);
  EXPECT_EQ(data.at(0, 0), 0);  // below range → first bin
  EXPECT_EQ(data.at(1, 0), 1);  // above range → last bin
  EXPECT_EQ(data.at(2, 0), 0);
}

TEST(Discretize, MultiColumnIndependentBins) {
  // Column 0 in [0,1], column 1 in [100,200]; bins must be per-column.
  std::vector<double> values;
  Xoshiro256 rng(608);
  for (int i = 0; i < 1000; ++i) {
    values.push_back(rng.uniform01());
    values.push_back(100.0 + 100.0 * rng.uniform01());
  }
  const Dataset data = discretize(values, 1000, 2,
                                  {DiscretizeMethod::kEqualWidth, 4});
  EXPECT_TRUE(data.validate());
  std::set<State> seen0;
  std::set<State> seen1;
  for (std::size_t i = 0; i < 1000; ++i) {
    seen0.insert(data.at(i, 0));
    seen1.insert(data.at(i, 1));
  }
  EXPECT_EQ(seen0.size(), 4u);
  EXPECT_EQ(seen1.size(), 4u);
}

TEST(Discretize, PreservesDependenceForTheLearner) {
  // Continuous y = x + noise; after discretization, MI must see the link.
  std::vector<double> values;
  Xoshiro256 rng(609);
  for (int i = 0; i < 30000; ++i) {
    const double x = rng.uniform01();
    values.push_back(x);
    values.push_back(x + 0.1 * rng.uniform01());
  }
  const Dataset data = discretize(values, 30000, 2, {});
  ChengOptions options;
  options.ci.threads = 2;
  const ChengResult result = ChengLearner(options).learn(data);
  EXPECT_TRUE(result.skeleton.has_edge(0, 1));
}

TEST(Discretize, RejectsBadInputs) {
  const std::vector<double> values = {1.0, 2.0};
  EXPECT_THROW((void)fit_discretizer(values, 2, 1, {DiscretizeMethod::kEqualWidth, 1}),
               PreconditionError);
  EXPECT_THROW((void)fit_discretizer(values, 3, 1, {}), PreconditionError);
  const std::vector<double> bad = {1.0, std::nan("")};
  EXPECT_THROW((void)fit_discretizer(bad, 2, 1, {}), DataError);
}

// ----------------------------------------------------------------- bootstrap

TEST(Bootstrap, ResampleKeepsShapeAndAlphabet) {
  const Dataset data = generate_chain_correlated(1000, 5, 3, 0.5, 610);
  Xoshiro256 rng(611);
  const Dataset resampled = resample_with_replacement(data, rng);
  EXPECT_EQ(resampled.sample_count(), 1000u);
  EXPECT_EQ(resampled.cardinalities(), data.cardinalities());
  EXPECT_TRUE(resampled.validate());
}

TEST(Bootstrap, TrueEdgesGetHighConfidenceNoiseGetsLow) {
  const Dataset data = generate_chain_correlated(20000, 5, 2, 0.8, 612);
  BootstrapOptions options;
  options.replicates = 10;
  options.threads = 2;
  const BootstrapResult result = bootstrap_edges(
      data,
      [](const Dataset& d) {
        ChengOptions learn_options;
        learn_options.ci.threads = 2;
        return ChengLearner(learn_options).learn(d).skeleton;
      },
      options);
  ASSERT_EQ(result.nodes, 5u);
  for (NodeId v = 0; v + 1 < 5; ++v) {
    EXPECT_GE(result.confidence(v, v + 1), 0.9) << "chain edge " << v;
  }
  EXPECT_LE(result.confidence(0, 4), 0.3);
  // Consensus at 0.5 recovers the chain.
  const UndirectedGraph consensus = result.consensus(0.5);
  EXPECT_EQ(consensus.edge_count(), 4u);
}

TEST(Bootstrap, ConfidenceMatrixIsSymmetricWithUnitRange) {
  const Dataset data = generate_uniform(5000, 4, 2, 613);
  const BootstrapResult result = bootstrap_edges(
      data,
      [](const Dataset& d) {
        ChengOptions learn_options;
        return ChengLearner(learn_options).learn(d).skeleton;
      },
      BootstrapOptions{5, 2, 1});
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(result.confidence(i, i), 0.0);
    for (NodeId j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(result.confidence(i, j), result.confidence(j, i));
      EXPECT_GE(result.confidence(i, j), 0.0);
      EXPECT_LE(result.confidence(i, j), 1.0);
    }
  }
}

TEST(Bootstrap, DeterministicInSeed) {
  const Dataset data = generate_chain_correlated(5000, 4, 2, 0.7, 614);
  auto learner = [](const Dataset& d) {
    ChengOptions learn_options;
    return ChengLearner(learn_options).learn(d).skeleton;
  };
  const BootstrapResult a = bootstrap_edges(data, learner, {5, 99, 1});
  const BootstrapResult b = bootstrap_edges(data, learner, {5, 99, 1});
  EXPECT_EQ(a.edge_confidence, b.edge_confidence);
}

TEST(Bootstrap, ValidatesArguments) {
  const Dataset data = generate_uniform(100, 3, 2, 615);
  EXPECT_THROW((void)bootstrap_edges(
                   data, [](const Dataset& d) { return UndirectedGraph(d.variable_count()); },
                   BootstrapOptions{0, 1, 1}),
               PreconditionError);
  EXPECT_THROW((void)bootstrap_edges(data, nullptr, BootstrapOptions{1, 1, 1}),
               PreconditionError);
}

}  // namespace
}  // namespace wfbn
