// Unit + randomized differential tests for the single-writer open-addressing
// count table.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "table/open_hash_table.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace wfbn {
namespace {

TEST(OpenHashTable, StartsEmpty) {
  OpenHashTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.count(123), 0u);
  EXPECT_FALSE(table.contains(123));
}

TEST(OpenHashTable, IncrementAndLookup) {
  OpenHashTable table;
  table.increment(5);
  table.increment(5);
  table.increment(9, 10);
  EXPECT_EQ(table.count(5), 2u);
  EXPECT_EQ(table.count(9), 10u);
  EXPECT_EQ(table.count(1), 0u);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.total_count(), 12u);
}

TEST(OpenHashTable, GrowsPastInitialCapacity) {
  OpenHashTable table(4);
  const std::size_t initial_capacity = table.capacity();
  for (Key key = 0; key < 10000; ++key) table.increment(key * 977);
  EXPECT_GT(table.capacity(), initial_capacity);
  EXPECT_EQ(table.size(), 10000u);
  for (Key key = 0; key < 10000; ++key) EXPECT_EQ(table.count(key * 977), 1u);
}

TEST(OpenHashTable, LoadFactorStaysBelowSeventyPercent) {
  OpenHashTable table(4);
  for (Key key = 0; key < 5000; ++key) {
    table.increment(key);
    ASSERT_LE(table.size() * 10, table.capacity() * 7);
  }
}

TEST(OpenHashTable, HandlesCollidingKeys) {
  // Keys a power-of-two capacity apart collide under mask-based slots.
  OpenHashTable table(16);
  const Key stride = table.capacity();
  for (Key i = 0; i < 10; ++i) table.increment(i * stride, i + 1);
  for (Key i = 0; i < 10; ++i) EXPECT_EQ(table.count(i * stride), i + 1);
}

TEST(OpenHashTable, ForEachVisitsEveryEntryOnce) {
  OpenHashTable table;
  for (Key key = 100; key < 200; ++key) table.increment(key, key);
  std::unordered_map<Key, std::uint64_t> seen;
  table.for_each([&](Key key, std::uint64_t c) {
    EXPECT_TRUE(seen.emplace(key, c).second) << "duplicate visit of " << key;
  });
  EXPECT_EQ(seen.size(), 100u);
  for (Key key = 100; key < 200; ++key) EXPECT_EQ(seen[key], key);
}

TEST(OpenHashTable, MergeFromAccumulatesAndEmptiesSource) {
  OpenHashTable a;
  OpenHashTable b;
  a.increment(1, 2);
  a.increment(2, 3);
  b.increment(2, 4);
  b.increment(3, 5);
  a.merge_from(b);
  EXPECT_EQ(a.count(1), 2u);
  EXPECT_EQ(a.count(2), 7u);
  EXPECT_EQ(a.count(3), 5u);
  EXPECT_TRUE(b.empty());
}

TEST(OpenHashTable, ClearResets) {
  OpenHashTable table;
  for (Key key = 0; key < 100; ++key) table.increment(key);
  table.clear();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.count(5), 0u);
  table.increment(5);
  EXPECT_EQ(table.count(5), 1u);
}

TEST(OpenHashTable, ReservePreventsGrowth) {
  OpenHashTable table;
  table.reserve(10000);
  const std::size_t capacity = table.capacity();
  for (Key key = 0; key < 10000; ++key) table.increment(key);
  EXPECT_EQ(table.capacity(), capacity);
}

TEST(OpenHashTable, DifferentialAgainstUnorderedMap) {
  Xoshiro256 rng(31);
  OpenHashTable table;
  std::unordered_map<Key, std::uint64_t> reference;
  for (int op = 0; op < 50000; ++op) {
    // Narrow key range forces repeated increments, wide range forces inserts.
    const Key key = (op % 3 == 0) ? rng.bounded(64) : rng.bounded(1 << 20);
    const std::uint64_t delta = 1 + rng.bounded(5);
    table.increment(key, delta);
    reference[key] += delta;
  }
  EXPECT_EQ(table.size(), reference.size());
  for (const auto& [key, count] : reference) EXPECT_EQ(table.count(key), count);
  std::uint64_t visited = 0;
  table.for_each([&](Key key, std::uint64_t c) {
    ++visited;
    EXPECT_EQ(reference.at(key), c);
  });
  EXPECT_EQ(visited, reference.size());
}

TEST(OpenHashTable, SupportsLargePaperScaleKeys) {
  OpenHashTable table;
  const Key near_max = (1ULL << 50) - 1;  // n=50, r=2 all-ones string
  table.increment(near_max, 7);
  table.increment(0, 1);
  EXPECT_EQ(table.count(near_max), 7u);
  EXPECT_EQ(table.count(0), 1u);
}

// ---- multi-cursor batched probing, prefetch-carrying drain stream, and
// huge-page backing (the stage-2 hot-path rework).

std::vector<Key> duplicate_heavy_keys(std::uint64_t seed, std::size_t count) {
  Xoshiro256 rng(seed);
  std::vector<Key> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Narrow range forces repeated increments, wide range forces inserts.
    keys.push_back(i % 4 == 0 ? rng.bounded(32) : rng.bounded(1 << 18));
  }
  return keys;
}

std::unordered_map<Key, std::uint64_t> contents_of(const OpenHashTable& table) {
  std::unordered_map<Key, std::uint64_t> map;
  table.for_each([&](Key key, std::uint64_t c) { map[key] = c; });
  return map;
}

TEST(OpenHashTable, BatchedIncrementMatchesSequentialAtEveryCursorCount) {
  for (const std::size_t count : {0u, 1u, 15u, 16u, 17u, 63u, 64u, 65u, 40000u}) {
    const std::vector<Key> keys = duplicate_heavy_keys(count + 5, count);
    OpenHashTable reference;
    reference.increment_block(keys.data(), keys.size());
    // Cursor counts below 2 fall back to the in-order path; above
    // kMaxProbeCursors they are clamped. A tiny initial capacity forces
    // mid-group grows.
    for (const std::size_t cursors : {0u, 1u, 2u, 7u, 16u, 64u, 200u}) {
      OpenHashTable table(4);
      table.increment_block_batched(keys.data(), keys.size(), cursors);
      EXPECT_EQ(contents_of(table), contents_of(reference))
          << "count=" << count << " cursors=" << cursors;
      EXPECT_EQ(table.size(), reference.size());
      EXPECT_EQ(table.total_count(), reference.total_count());
    }
  }
}

TEST(OpenHashTable, BatchedIncrementHandlesDuplicatesWithinOneGroup) {
  // A whole group of one key: the first cursor to resolve inserts, every
  // other cursor must find that entry on its own walk.
  std::vector<Key> keys(64, 42);
  OpenHashTable table;
  table.increment_block_batched(keys.data(), keys.size(), 64);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.count(42), 64u);
  EXPECT_EQ(table.total_count(), 64u);
}

TEST(OpenHashTable, IncrementBlockPrefetchesEveryKeyIncludingTheTail) {
  // Distances beyond the block length prime the whole block up front; the
  // result must stay exact at every (count, distance) shape.
  for (const std::size_t count : {1u, 3u, 31u, 33u, 1000u}) {
    const std::vector<Key> keys = duplicate_heavy_keys(count, count);
    OpenHashTable reference;
    reference.increment_block(keys.data(), keys.size());
    for (const std::size_t distance : {1u, 4u, 16u, 2000u}) {
      OpenHashTable table;
      table.increment_block(keys.data(), keys.size(), distance);
      EXPECT_EQ(contents_of(table), contents_of(reference))
          << "count=" << count << " distance=" << distance;
    }
  }
}

TEST(OpenHashTable, DrainStreamMatchesInOrderIncrementsAcrossSpans) {
  const std::vector<Key> keys = duplicate_heavy_keys(77, 20000);
  OpenHashTable reference;
  reference.increment_block(keys.data(), keys.size());
  for (const std::size_t distance : {0u, 1u, 4u, 9u, 64u}) {
    OpenHashTable table;
    OpenHashTable::DrainStream stream(table, distance);
    // Uneven span lengths, including spans shorter than the carry window —
    // exactly the shape where the old per-block prefetch fence went dark.
    std::size_t at = 0;
    std::size_t span = 1;
    while (at < keys.size()) {
      const std::size_t n = std::min(span, keys.size() - at);
      stream.feed(keys.data() + at, n);
      EXPECT_LE(stream.carried(), distance);
      at += n;
      span = span * 3 % 17 + 1;
    }
    stream.finish();
    EXPECT_EQ(stream.carried(), 0u);
    EXPECT_EQ(contents_of(table), contents_of(reference))
        << "distance=" << distance;
    EXPECT_EQ(table.total_count(), reference.total_count());
  }
}

TEST(OpenHashTable, HugePageBackingStates) {
  // Small tables never take huge backing (a 2 MB page per 16-slot table
  // would be absurd); large requested tables either get the advice or fall
  // back — never plain kHeap.
  OpenHashTable small(16, /*huge_pages=*/true);
  EXPECT_EQ(small.backing(), PageBacking::kHeap);
  EXPECT_TRUE(small.huge_pages_requested());

  OpenHashTable plain(1 << 20, /*huge_pages=*/false);
  EXPECT_EQ(plain.backing(), PageBacking::kHeap);
  EXPECT_FALSE(plain.huge_pages_requested());

  OpenHashTable big(1 << 20, /*huge_pages=*/true);
  EXPECT_NE(big.backing(), PageBacking::kHeap);
  // Whatever the backing, the table must behave identically.
  for (Key key = 0; key < 50000; ++key) big.increment(key * 977);
  for (Key key = 0; key < 50000; ++key) ASSERT_EQ(big.count(key * 977), 1u);
}

TEST(OpenHashTable, HugePageRequestSurvivesGrowAndCopy) {
  OpenHashTable table(16, /*huge_pages=*/true);
  EXPECT_EQ(table.backing(), PageBacking::kHeap);  // too small so far
  // Grow it past one huge page (16-byte entries, 2 MB = 131072 slots).
  for (Key key = 0; key < 200000; ++key) table.increment(key * 31 + 7);
  EXPECT_NE(table.backing(), PageBacking::kHeap);
  OpenHashTable copy = table;
  EXPECT_EQ(copy.backing(), table.backing());
  EXPECT_EQ(contents_of(copy), contents_of(table));
}

TEST(OpenHashTable, HugePageFaultPointDegradesToFallback) {
  fault::ScopedFaultInjection injection;
  fault::arm(fault::Point::kTableHugePage, 1);
  OpenHashTable table(1 << 20, /*huge_pages=*/true);
  // The injected refusal must degrade (normal pages), never throw.
  EXPECT_EQ(table.backing(), PageBacking::kHugeFallback);
  EXPECT_GE(fault::hits(fault::Point::kTableHugePage), 1u);
  table.increment(9, 3);
  EXPECT_EQ(table.count(9), 3u);
}

}  // namespace
}  // namespace wfbn
