// Unit + randomized differential tests for the single-writer open-addressing
// count table.
#include <gtest/gtest.h>

#include <unordered_map>

#include "table/open_hash_table.hpp"
#include "util/rng.hpp"

namespace wfbn {
namespace {

TEST(OpenHashTable, StartsEmpty) {
  OpenHashTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.count(123), 0u);
  EXPECT_FALSE(table.contains(123));
}

TEST(OpenHashTable, IncrementAndLookup) {
  OpenHashTable table;
  table.increment(5);
  table.increment(5);
  table.increment(9, 10);
  EXPECT_EQ(table.count(5), 2u);
  EXPECT_EQ(table.count(9), 10u);
  EXPECT_EQ(table.count(1), 0u);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.total_count(), 12u);
}

TEST(OpenHashTable, GrowsPastInitialCapacity) {
  OpenHashTable table(4);
  const std::size_t initial_capacity = table.capacity();
  for (Key key = 0; key < 10000; ++key) table.increment(key * 977);
  EXPECT_GT(table.capacity(), initial_capacity);
  EXPECT_EQ(table.size(), 10000u);
  for (Key key = 0; key < 10000; ++key) EXPECT_EQ(table.count(key * 977), 1u);
}

TEST(OpenHashTable, LoadFactorStaysBelowSeventyPercent) {
  OpenHashTable table(4);
  for (Key key = 0; key < 5000; ++key) {
    table.increment(key);
    ASSERT_LE(table.size() * 10, table.capacity() * 7);
  }
}

TEST(OpenHashTable, HandlesCollidingKeys) {
  // Keys a power-of-two capacity apart collide under mask-based slots.
  OpenHashTable table(16);
  const Key stride = table.capacity();
  for (Key i = 0; i < 10; ++i) table.increment(i * stride, i + 1);
  for (Key i = 0; i < 10; ++i) EXPECT_EQ(table.count(i * stride), i + 1);
}

TEST(OpenHashTable, ForEachVisitsEveryEntryOnce) {
  OpenHashTable table;
  for (Key key = 100; key < 200; ++key) table.increment(key, key);
  std::unordered_map<Key, std::uint64_t> seen;
  table.for_each([&](Key key, std::uint64_t c) {
    EXPECT_TRUE(seen.emplace(key, c).second) << "duplicate visit of " << key;
  });
  EXPECT_EQ(seen.size(), 100u);
  for (Key key = 100; key < 200; ++key) EXPECT_EQ(seen[key], key);
}

TEST(OpenHashTable, MergeFromAccumulatesAndEmptiesSource) {
  OpenHashTable a;
  OpenHashTable b;
  a.increment(1, 2);
  a.increment(2, 3);
  b.increment(2, 4);
  b.increment(3, 5);
  a.merge_from(b);
  EXPECT_EQ(a.count(1), 2u);
  EXPECT_EQ(a.count(2), 7u);
  EXPECT_EQ(a.count(3), 5u);
  EXPECT_TRUE(b.empty());
}

TEST(OpenHashTable, ClearResets) {
  OpenHashTable table;
  for (Key key = 0; key < 100; ++key) table.increment(key);
  table.clear();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.count(5), 0u);
  table.increment(5);
  EXPECT_EQ(table.count(5), 1u);
}

TEST(OpenHashTable, ReservePreventsGrowth) {
  OpenHashTable table;
  table.reserve(10000);
  const std::size_t capacity = table.capacity();
  for (Key key = 0; key < 10000; ++key) table.increment(key);
  EXPECT_EQ(table.capacity(), capacity);
}

TEST(OpenHashTable, DifferentialAgainstUnorderedMap) {
  Xoshiro256 rng(31);
  OpenHashTable table;
  std::unordered_map<Key, std::uint64_t> reference;
  for (int op = 0; op < 50000; ++op) {
    // Narrow key range forces repeated increments, wide range forces inserts.
    const Key key = (op % 3 == 0) ? rng.bounded(64) : rng.bounded(1 << 20);
    const std::uint64_t delta = 1 + rng.bounded(5);
    table.increment(key, delta);
    reference[key] += delta;
  }
  EXPECT_EQ(table.size(), reference.size());
  for (const auto& [key, count] : reference) EXPECT_EQ(table.count(key), count);
  std::uint64_t visited = 0;
  table.for_each([&](Key key, std::uint64_t c) {
    ++visited;
    EXPECT_EQ(reference.at(key), c);
  });
  EXPECT_EQ(visited, reference.size());
}

TEST(OpenHashTable, SupportsLargePaperScaleKeys) {
  OpenHashTable table;
  const Key near_max = (1ULL << 50) - 1;  // n=50, r=2 all-ones string
  table.increment(near_max, 7);
  table.increment(0, 1);
  EXPECT_EQ(table.count(near_max), 7u);
  EXPECT_EQ(table.count(0), 1u);
}

}  // namespace
}  // namespace wfbn
