// Tests for the wait-free SPSC queue — including a true concurrent
// producer/consumer stress test (the pipelined builder's usage pattern).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "concurrent/spsc_queue.hpp"

namespace wfbn {
namespace {

TEST(SpscQueue, StartsEmpty) {
  SpscQueue<std::uint64_t> queue;
  std::uint64_t out = 0;
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.try_pop(out));
  EXPECT_EQ(queue.pushed(), 0u);
}

TEST(SpscQueue, FifoWithinOneChunk) {
  SpscQueue<std::uint64_t> queue;
  for (std::uint64_t i = 0; i < 100; ++i) queue.push(i);
  EXPECT_EQ(queue.pushed(), 100u);
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.try_pop(out));
  EXPECT_TRUE(queue.empty());
}

TEST(SpscQueue, FifoAcrossChunkBoundaries) {
  // Small chunks force many chunk transitions.
  SpscQueue<std::uint64_t, 4> queue;
  constexpr std::uint64_t kCount = 1000;
  for (std::uint64_t i = 0; i < kCount; ++i) queue.push(i);
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(queue.try_pop(out));
    ASSERT_EQ(out, i);
  }
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(SpscQueue, InterleavedPushPop) {
  SpscQueue<std::uint64_t, 8> queue;
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  std::uint64_t out = 0;
  for (int round = 0; round < 500; ++round) {
    for (int i = 0; i < 3; ++i) queue.push(next_push++);
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(queue.try_pop(out));
      ASSERT_EQ(out, next_pop++);
    }
  }
  while (queue.try_pop(out)) {
    ASSERT_EQ(out, next_pop++);
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpscQueue, EmptyReflectsConsumerView) {
  SpscQueue<std::uint64_t, 4> queue;
  EXPECT_TRUE(queue.empty());
  queue.push(1);
  EXPECT_FALSE(queue.empty());
  std::uint64_t out = 0;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_TRUE(queue.empty());
  // Fill exactly one chunk, drain it, then cross into the next.
  for (std::uint64_t i = 0; i < 4; ++i) queue.push(i);
  queue.push(99);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.try_pop(out));
  EXPECT_TRUE(queue.empty());
}

TEST(SpscQueue, StoresArbitraryTrivialTypes) {
  struct Item {
    std::uint32_t a;
    float b;
  };
  SpscQueue<Item> queue;
  queue.push(Item{7, 2.5f});
  Item out{};
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.a, 7u);
  EXPECT_FLOAT_EQ(out.b, 2.5f);
}

TEST(SpscQueue, ConcurrentProducerConsumerDeliversEverythingInOrder) {
  SpscQueue<std::uint64_t, 256> queue;
  constexpr std::uint64_t kCount = 2000000;

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) queue.push(i);
  });

  std::uint64_t expected = 0;
  std::uint64_t out = 0;
  while (expected < kCount) {
    if (queue.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_FALSE(queue.try_pop(out));
  EXPECT_EQ(queue.pushed(), kCount);
}

TEST(SpscQueueBulk, PushBlockRoundTripsAcrossChunkBoundaries) {
  SpscQueue<std::uint64_t, 4> queue;
  constexpr std::uint64_t kCount = 1003;  // deliberately not a chunk multiple
  std::vector<std::uint64_t> items(kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) items[i] = i;
  queue.push_block(items.data(), items.size());
  EXPECT_EQ(queue.pushed(), kCount);
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(queue.try_pop(out));
    ASSERT_EQ(out, i);
  }
  EXPECT_FALSE(queue.try_pop(out));
  EXPECT_TRUE(queue.empty());
}

TEST(SpscQueueBulk, PushBlockOfZeroItemsIsANoOp) {
  SpscQueue<std::uint64_t, 4> queue;
  const std::uint64_t sentinel = 7;
  queue.push_block(&sentinel, 0);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.pushed(), 0u);
}

TEST(SpscQueueBulk, ConsumeDeliversWholeSpansInFifoOrder) {
  SpscQueue<std::uint64_t, 8> queue;
  constexpr std::uint64_t kCount = 100;
  for (std::uint64_t i = 0; i < kCount; ++i) queue.push(i);
  std::vector<std::uint64_t> seen;
  std::size_t spans = 0;
  const std::size_t consumed = queue.consume([&](const std::uint64_t* span,
                                                 std::size_t count) {
    ++spans;
    EXPECT_LE(count, queue.chunk_capacity());
    seen.insert(seen.end(), span, span + count);
  });
  EXPECT_EQ(consumed, kCount);
  // One span per chunk: 100 items over capacity-8 chunks is 13 spans.
  EXPECT_EQ(spans, (kCount + 7) / 8);
  ASSERT_EQ(seen.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) EXPECT_EQ(seen[i], i);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.consume([](const std::uint64_t*, std::size_t) {}), 0u);
}

TEST(SpscQueueBulk, BulkAndScalarApisInteroperate) {
  SpscQueue<std::uint64_t, 4> queue;
  std::uint64_t next = 0;
  std::vector<std::uint64_t> block(6);
  // Alternate scalar pushes with bulk blocks; FIFO must hold across both.
  for (int round = 0; round < 50; ++round) {
    queue.push(next++);
    for (auto& item : block) item = next++;
    queue.push_block(block.data(), block.size());
  }
  std::uint64_t expected = 0;
  std::uint64_t out = 0;
  // Drain alternating between the scalar and bulk consumer.
  while (expected < next) {
    if (expected % 2 == 0) {
      ASSERT_TRUE(queue.try_pop(out));
      ASSERT_EQ(out, expected++);
    } else {
      queue.consume([&](const std::uint64_t* span, std::size_t count) {
        for (std::size_t k = 0; k < count; ++k) ASSERT_EQ(span[k], expected++);
      });
    }
  }
  EXPECT_TRUE(queue.empty());
}

TEST(SpscQueueBulk, ThrowingConsumerRedeliversTheSpan) {
  SpscQueue<std::uint64_t, 8> queue;
  for (std::uint64_t i = 0; i < 5; ++i) queue.push(i);
  EXPECT_THROW(queue.consume([](const std::uint64_t*, std::size_t) {
    throw std::runtime_error("mid-drain failure");
  }),
               std::runtime_error);
  // Nothing was marked consumed: the same span arrives again.
  std::vector<std::uint64_t> seen;
  queue.consume([&](const std::uint64_t* span, std::size_t count) {
    seen.insert(seen.end(), span, span + count);
  });
  ASSERT_EQ(seen.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(seen[i], i);
}

TEST(SpscQueueBulk, ConcurrentBulkProducerAndConsumerDeliverEverythingInOrder) {
  // The builders' usage pattern under TSan: producer flushes variable-sized
  // blocks (write-combining buffers), consumer drains whole published spans.
  SpscQueue<std::uint64_t, 256> queue;
  constexpr std::uint64_t kCount = 1000000;

  std::thread producer([&] {
    std::vector<std::uint64_t> block;
    block.reserve(97);
    std::uint64_t next = 0;
    while (next < kCount) {
      // Vary the flush size across chunk-boundary phases (97 is coprime with
      // the chunk capacity, so every offset within a chunk gets exercised).
      const std::uint64_t take = std::min<std::uint64_t>(97, kCount - next);
      block.clear();
      for (std::uint64_t i = 0; i < take; ++i) block.push_back(next++);
      queue.push_block(block.data(), block.size());
    }
  });

  std::uint64_t expected = 0;
  while (expected < kCount) {
    const std::size_t got =
        queue.consume([&](const std::uint64_t* span, std::size_t count) {
          for (std::size_t k = 0; k < count; ++k) {
            ASSERT_EQ(span[k], expected);
            ++expected;
          }
        });
    if (got == 0) std::this_thread::yield();
  }
  producer.join();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.pushed(), kCount);
}

TEST(SpscQueue, DestructorReleasesUnconsumedChunks) {
  // Leak-checked implicitly under ASan builds; here we just exercise the
  // path where many chunks are still linked at destruction.
  auto queue = std::make_unique<SpscQueue<std::uint64_t, 16>>();
  for (std::uint64_t i = 0; i < 10000; ++i) queue->push(i);
  std::uint64_t out = 0;
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(queue->try_pop(out));
  queue.reset();
  SUCCEED();
}

}  // namespace
}  // namespace wfbn
