// Tests for the wait-free SPSC queue — including a true concurrent
// producer/consumer stress test (the pipelined builder's usage pattern).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "concurrent/spsc_queue.hpp"

namespace wfbn {
namespace {

TEST(SpscQueue, StartsEmpty) {
  SpscQueue<std::uint64_t> queue;
  std::uint64_t out = 0;
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.try_pop(out));
  EXPECT_EQ(queue.pushed(), 0u);
}

TEST(SpscQueue, FifoWithinOneChunk) {
  SpscQueue<std::uint64_t> queue;
  for (std::uint64_t i = 0; i < 100; ++i) queue.push(i);
  EXPECT_EQ(queue.pushed(), 100u);
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.try_pop(out));
  EXPECT_TRUE(queue.empty());
}

TEST(SpscQueue, FifoAcrossChunkBoundaries) {
  // Small chunks force many chunk transitions.
  SpscQueue<std::uint64_t, 4> queue;
  constexpr std::uint64_t kCount = 1000;
  for (std::uint64_t i = 0; i < kCount; ++i) queue.push(i);
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(queue.try_pop(out));
    ASSERT_EQ(out, i);
  }
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(SpscQueue, InterleavedPushPop) {
  SpscQueue<std::uint64_t, 8> queue;
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  std::uint64_t out = 0;
  for (int round = 0; round < 500; ++round) {
    for (int i = 0; i < 3; ++i) queue.push(next_push++);
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(queue.try_pop(out));
      ASSERT_EQ(out, next_pop++);
    }
  }
  while (queue.try_pop(out)) {
    ASSERT_EQ(out, next_pop++);
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpscQueue, EmptyReflectsConsumerView) {
  SpscQueue<std::uint64_t, 4> queue;
  EXPECT_TRUE(queue.empty());
  queue.push(1);
  EXPECT_FALSE(queue.empty());
  std::uint64_t out = 0;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_TRUE(queue.empty());
  // Fill exactly one chunk, drain it, then cross into the next.
  for (std::uint64_t i = 0; i < 4; ++i) queue.push(i);
  queue.push(99);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.try_pop(out));
  EXPECT_TRUE(queue.empty());
}

TEST(SpscQueue, StoresArbitraryTrivialTypes) {
  struct Item {
    std::uint32_t a;
    float b;
  };
  SpscQueue<Item> queue;
  queue.push(Item{7, 2.5f});
  Item out{};
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.a, 7u);
  EXPECT_FLOAT_EQ(out.b, 2.5f);
}

TEST(SpscQueue, ConcurrentProducerConsumerDeliversEverythingInOrder) {
  SpscQueue<std::uint64_t, 256> queue;
  constexpr std::uint64_t kCount = 2000000;

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) queue.push(i);
  });

  std::uint64_t expected = 0;
  std::uint64_t out = 0;
  while (expected < kCount) {
    if (queue.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_FALSE(queue.try_pop(out));
  EXPECT_EQ(queue.pushed(), kCount);
}

TEST(SpscQueue, DestructorReleasesUnconsumedChunks) {
  // Leak-checked implicitly under ASan builds; here we just exercise the
  // path where many chunks are still linked at destruction.
  auto queue = std::make_unique<SpscQueue<std::uint64_t, 16>>();
  for (std::uint64_t i = 0; i < 10000; ++i) queue->push(i);
  std::uint64_t out = 0;
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(queue->try_pop(out));
  queue.reset();
  SUCCEED();
}

}  // namespace
}  // namespace wfbn
