// Unit tests for the xoshiro256** generator and seeding utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace wfbn {
namespace {

TEST(Splitmix64, IsDeterministicAndAdvancesState) {
  std::uint64_t s1 = 12345;
  std::uint64_t s2 = 12345;
  EXPECT_EQ(splitmix64_next(s1), splitmix64_next(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(splitmix64_next(s1), splitmix64_next(s2) + 1);  // states moved on
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, NearbySeedsAreDecorrelated) {
  // splitmix64 expansion should prevent seed=k and seed=k+1 from producing
  // correlated low bits.
  Xoshiro256 a(100);
  Xoshiro256 b(101);
  int same_parity = 0;
  constexpr int kDraws = 4096;
  for (int i = 0; i < kDraws; ++i) same_parity += ((a() & 1) == (b() & 1));
  EXPECT_NEAR(same_parity, kDraws / 2, kDraws / 8);
}

TEST(Xoshiro256, JumpProducesDisjointStream) {
  Xoshiro256 base(7);
  Xoshiro256 jumped = base.split(1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 512; ++i) seen.insert(base());
  for (int i = 0; i < 512; ++i) EXPECT_EQ(seen.count(jumped()), 0u);
}

TEST(Xoshiro256, SplitStreamsAreIndependentOfDrawOrder) {
  const Xoshiro256 root(99);
  Xoshiro256 s2_before = root.split(2);
  Xoshiro256 s1 = root.split(1);
  for (int i = 0; i < 10; ++i) (void)s1();
  Xoshiro256 s2_after = root.split(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s2_before(), s2_after());
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 rng(3);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Xoshiro256, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> histogram(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.bounded(kBound)];
  // Chi-squared with 9 dof: 99.99th percentile ≈ 33.7.
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kBound;
  for (const int observed : histogram) {
    const double d = observed - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 33.7);
}

TEST(Xoshiro256, Uniform01InHalfOpenInterval) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ULL);
  Xoshiro256 rng(1);
  (void)rng();  // usable with <random> distributions
  SUCCEED();
}

}  // namespace
}  // namespace wfbn
