// Tests for the built-in benchmark networks (paper reference [1]).
#include <gtest/gtest.h>

#include "bn/d_separation.hpp"
#include "bn/repository.hpp"
#include "bn/sampling.hpp"

namespace wfbn {
namespace {

struct ExpectedShape {
  RepositoryNetwork which;
  std::size_t nodes;
  std::size_t edges;
};

class RepositoryShapes : public ::testing::TestWithParam<ExpectedShape> {};

TEST_P(RepositoryShapes, HasPublishedStructureAndValidCpts) {
  const auto [which, nodes, edges] = GetParam();
  const BayesianNetwork bn = load_network(which);
  EXPECT_EQ(bn.node_count(), nodes);
  EXPECT_EQ(bn.dag().edge_count(), edges);
  EXPECT_TRUE(bn.validate());
  // DAG invariant: a topological order exists over all nodes.
  EXPECT_EQ(bn.dag().topological_order().size(), nodes);
  // Names are unique and resolvable.
  for (NodeId v = 0; v < bn.node_count(); ++v) {
    EXPECT_EQ(bn.node_by_name(bn.name(v)), v);
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, RepositoryShapes,
    ::testing::Values(ExpectedShape{RepositoryNetwork::kAsia, 8, 8},
                      ExpectedShape{RepositoryNetwork::kCancer, 5, 4},
                      ExpectedShape{RepositoryNetwork::kEarthquake, 5, 4},
                      ExpectedShape{RepositoryNetwork::kSurvey, 6, 6},
                      ExpectedShape{RepositoryNetwork::kSachs, 11, 17},
                      ExpectedShape{RepositoryNetwork::kChild, 20, 25},
                      ExpectedShape{RepositoryNetwork::kAlarm, 37, 46}),
    [](const auto& param_info) {
      return repository_network_name(param_info.param.which);
    });

TEST(Repository, AllNetworksAreSampleable) {
  for (const RepositoryNetwork which : all_repository_networks()) {
    const BayesianNetwork bn = load_network(which);
    const Dataset data = forward_sample(bn, 200, 1);
    EXPECT_EQ(data.sample_count(), 200u);
    EXPECT_EQ(data.variable_count(), bn.node_count());
    EXPECT_TRUE(data.validate());
  }
}

TEST(Repository, AsiaCptsMatchLauritzenSpiegelhalter) {
  const BayesianNetwork asia = load_network(RepositoryNetwork::kAsia);
  const NodeId A = asia.node_by_name("asia");
  const NodeId S = asia.node_by_name("smoke");
  const NodeId T = asia.node_by_name("tub");
  EXPECT_DOUBLE_EQ(asia.cpt(A).probability(0, 0), 0.01);
  EXPECT_DOUBLE_EQ(asia.cpt(S).probability(0, 0), 0.5);
  // P(tub = yes | asia = yes) = 0.05, | asia = no) = 0.01.
  EXPECT_DOUBLE_EQ(asia.cpt(T).probability(0, 0), 0.05);
  EXPECT_DOUBLE_EQ(asia.cpt(T).probability(0, 1), 0.01);
}

TEST(Repository, AsiaEitherIsDeterministicOr) {
  const BayesianNetwork asia = load_network(RepositoryNetwork::kAsia);
  const NodeId E = asia.node_by_name("either");
  // Configs: (tub, lung) with tub fastest; state 0 = yes.
  EXPECT_DOUBLE_EQ(asia.cpt(E).probability(0, 0), 1.0);  // yes,yes
  EXPECT_DOUBLE_EQ(asia.cpt(E).probability(0, 1), 1.0);  // no,yes
  EXPECT_DOUBLE_EQ(asia.cpt(E).probability(0, 2), 1.0);  // yes,no
  EXPECT_DOUBLE_EQ(asia.cpt(E).probability(0, 3), 0.0);  // no,no
}

TEST(Repository, EarthquakeAlarmProbabilities) {
  const BayesianNetwork eq = load_network(RepositoryNetwork::kEarthquake);
  const NodeId A = eq.node_by_name("Alarm");
  EXPECT_DOUBLE_EQ(eq.cpt(A).probability(0, 0), 0.95);   // b, e
  EXPECT_DOUBLE_EQ(eq.cpt(A).probability(0, 3), 0.001);  // ¬b, ¬e
}

TEST(Repository, AlarmContainsKnownPathways) {
  const BayesianNetwork alarm = load_network(RepositoryNetwork::kAlarm);
  const NodeId hr = alarm.node_by_name("HR");
  const NodeId catechol = alarm.node_by_name("CATECHOL");
  const NodeId co = alarm.node_by_name("CO");
  EXPECT_TRUE(alarm.dag().has_edge(catechol, hr));
  EXPECT_TRUE(alarm.dag().has_edge(hr, co));
  // LVFAILURE influences BP only through intermediate hemodynamics.
  const NodeId lvf = alarm.node_by_name("LVFAILURE");
  const NodeId bp = alarm.node_by_name("BP");
  EXPECT_FALSE(alarm.dag().has_edge(lvf, bp));
  EXPECT_FALSE(d_separated(alarm.dag(), lvf, bp, {}));
  const NodeId sv = alarm.node_by_name("STROKEVOLUME");
  const NodeId tpr = alarm.node_by_name("TPR");
  EXPECT_TRUE(d_separated(alarm.dag(), lvf, bp, {sv, co, tpr}));
}

TEST(Repository, DifferentCptSeedsChangeRandomNetworks) {
  const BayesianNetwork a = load_network(RepositoryNetwork::kSachs, 1);
  const BayesianNetwork b = load_network(RepositoryNetwork::kSachs, 2);
  bool any_difference = false;
  for (NodeId v = 0; v < a.node_count(); ++v) {
    if (a.cpt(v).raw() != b.cpt(v).raw()) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
  // Canonical-CPT networks ignore the seed.
  const BayesianNetwork asia1 = load_network(RepositoryNetwork::kAsia, 1);
  const BayesianNetwork asia2 = load_network(RepositoryNetwork::kAsia, 2);
  for (NodeId v = 0; v < asia1.node_count(); ++v) {
    EXPECT_EQ(asia1.cpt(v).raw(), asia2.cpt(v).raw());
  }
}

TEST(Repository, NamesRoundTrip) {
  for (const RepositoryNetwork which : all_repository_networks()) {
    EXPECT_FALSE(repository_network_name(which).empty());
  }
}

}  // namespace
}  // namespace wfbn
