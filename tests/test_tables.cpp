// Tests for DenseTable, PartitionedTable, MarginalTable and PotentialTable —
// the layered potential-table representation of paper §IV-A.
#include <gtest/gtest.h>

#include <map>

#include "table/dense_table.hpp"
#include "table/marginal_table.hpp"
#include "table/partitioned_table.hpp"
#include "table/potential_table.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wfbn {
namespace {

// ---------------------------------------------------------------- DenseTable

TEST(DenseTable, CountsByDirectIndex) {
  DenseTable table(8);
  table.increment(3);
  table.increment(3, 4);
  table.increment(0);
  EXPECT_EQ(table.count(3), 5u);
  EXPECT_EQ(table.count(0), 1u);
  EXPECT_EQ(table.count(7), 0u);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.total_count(), 6u);
}

TEST(DenseTable, ForEachSkipsZerosInKeyOrder) {
  DenseTable table(10);
  table.increment(7, 2);
  table.increment(2, 1);
  std::vector<Key> keys;
  table.for_each([&](Key key, std::uint64_t) { keys.push_back(key); });
  EXPECT_EQ(keys, (std::vector<Key>{2, 7}));
}

TEST(DenseTable, RejectsHugeStateSpaces) {
  EXPECT_THROW(DenseTable(1ULL << 40), PreconditionError);
  EXPECT_THROW(DenseTable(0), PreconditionError);
}

// ----------------------------------------------------------- PartitionedTable

TEST(PartitionedTable, ModuloOwnershipMatchesPaperAlgorithm1) {
  PartitionedTable table(4, 1000);
  for (Key key = 0; key < 100; ++key) {
    EXPECT_EQ(table.owner_of(key), key % 4);
  }
}

TEST(PartitionedTable, RangeOwnershipIsContiguousAndComplete) {
  PartitionedTable table(4, 1000, PartitionScheme::kRange);
  std::size_t previous = 0;
  std::vector<std::size_t> hits(4, 0);
  for (Key key = 0; key < 1000; ++key) {
    const std::size_t owner = table.owner_of(key);
    ASSERT_LT(owner, 4u);
    ASSERT_GE(owner, previous);  // non-decreasing over the key range
    previous = owner;
    ++hits[owner];
  }
  for (const std::size_t h : hits) EXPECT_EQ(h, 250u);  // even split
}

TEST(PartitionedTable, CountRoutesThroughOwner) {
  PartitionedTable table(3, 300);
  table.partition(table.owner_of(17)).increment(17, 5);
  EXPECT_EQ(table.count(17), 5u);
  EXPECT_EQ(table.count_anywhere(17), 5u);
  EXPECT_EQ(table.count(18), 0u);
}

TEST(PartitionedTable, OwnershipInvariantDetection) {
  PartitionedTable table(2, 100);
  table.partition(0).increment(2);  // 2 % 2 == 0 ✓
  table.partition(1).increment(3);  // 3 % 2 == 1 ✓
  EXPECT_TRUE(table.ownership_invariant_holds());
  table.partition(0).increment(5);  // 5 % 2 == 1 ✗
  EXPECT_FALSE(table.ownership_invariant_holds());
}

TEST(PartitionedTable, RebalanceEqualizesPopulationsAndPreservesCounts) {
  PartitionedTable table(4, 100000);
  // Stuff everything into partition 0 (legal after construction — the
  // marginalization primitive doesn't need ownership; see paper §IV-C).
  Xoshiro256 rng(3);
  std::map<Key, std::uint64_t> reference;
  for (int i = 0; i < 1000; ++i) {
    const Key key = rng.bounded(100000);
    const std::uint64_t delta = 1 + rng.bounded(3);
    table.partition(0).increment(key, delta);
    reference[key] += delta;
  }
  const std::uint64_t total_before = table.total_count();
  const std::size_t moved = table.rebalance();
  EXPECT_GT(moved, 0u);
  const auto [largest, smallest] = table.population_extremes();
  EXPECT_LE(largest - smallest, 1u);
  EXPECT_EQ(table.total_count(), total_before);
  for (const auto& [key, count] : reference) {
    EXPECT_EQ(table.count_anywhere(key), count);
  }
}

TEST(PartitionedTable, RebalanceOnBalancedTableIsANoOp) {
  PartitionedTable table(2, 100);
  table.partition(0).increment(0);
  table.partition(1).increment(1);
  EXPECT_EQ(table.rebalance(), 0u);
}

TEST(PartitionedTable, SinglePartitionDegeneratesGracefully) {
  PartitionedTable table(1, 50);
  for (Key key = 0; key < 50; ++key) {
    EXPECT_EQ(table.owner_of(key), 0u);
  }
  table.partition(0).increment(10);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.rebalance(), 0u);
}

// -------------------------------------------------------------- MarginalTable

TEST(MarginalTable, IndexOfIsRowMajorFirstVariableFastest) {
  MarginalTable table({4, 9}, {2, 3});
  const State s00[] = {0, 0};
  const State s10[] = {1, 0};
  const State s01[] = {0, 1};
  const State s12[] = {1, 2};
  EXPECT_EQ(table.index_of(s00), 0u);
  EXPECT_EQ(table.index_of(s10), 1u);
  EXPECT_EQ(table.index_of(s01), 2u);
  EXPECT_EQ(table.index_of(s12), 5u);
  EXPECT_EQ(table.cell_count(), 6u);
}

TEST(MarginalTable, ProbabilitiesNormalize) {
  MarginalTable table({0}, {2});
  table.add(0, 30);
  table.add(1, 70);
  EXPECT_DOUBLE_EQ(table.probability(0), 0.3);
  EXPECT_DOUBLE_EQ(table.probability(1), 0.7);
  EXPECT_EQ(table.total(), 100u);
}

TEST(MarginalTable, MergeAddsCellwise) {
  MarginalTable a({0}, {3});
  MarginalTable b({0}, {3});
  a.add(0, 1);
  a.add(2, 2);
  b.add(1, 5);
  b.add(2, 1);
  a.merge(b);
  EXPECT_EQ(a.count_at(0), 1u);
  EXPECT_EQ(a.count_at(1), 5u);
  EXPECT_EQ(a.count_at(2), 3u);
}

TEST(MarginalTable, MergeShapeMismatchThrows) {
  MarginalTable a({0}, {3});
  MarginalTable b({1}, {3});
  MarginalTable c({0}, {2});
  EXPECT_THROW(a.merge(b), PreconditionError);
  EXPECT_THROW(a.merge(c), PreconditionError);
}

TEST(MarginalTable, SumOutToComputesCorrectMarginal) {
  // P(X0, X1) counts; summing out X1 must give row sums.
  MarginalTable joint({0, 1}, {2, 3});
  Xoshiro256 rng(9);
  std::vector<std::uint64_t> expected_x0(2, 0);
  for (std::uint64_t cell = 0; cell < 6; ++cell) {
    const std::uint64_t c = rng.bounded(100);
    joint.add(cell, c);
    expected_x0[cell % 2] += c;
  }
  const std::size_t keep[] = {0};
  const MarginalTable x0 = joint.sum_out_to(keep);
  EXPECT_EQ(x0.count_at(0), expected_x0[0]);
  EXPECT_EQ(x0.count_at(1), expected_x0[1]);
  EXPECT_EQ(x0.total(), joint.total());
}

TEST(MarginalTable, SumOutToReordersVariables) {
  MarginalTable joint({3, 7}, {2, 2});
  const State s01[] = {0, 1};
  joint.add(joint.index_of(s01), 10);
  const std::size_t keep[] = {7, 3};
  const MarginalTable swapped = joint.sum_out_to(keep);
  const State t10[] = {1, 0};
  EXPECT_EQ(swapped.count_of(t10), 10u);
  EXPECT_EQ(swapped.variables(), (std::vector<std::size_t>{7, 3}));
}

TEST(MarginalTable, SumOutToUnknownVariableThrows) {
  MarginalTable joint({0, 1}, {2, 2});
  const std::size_t keep[] = {5};
  EXPECT_THROW((void)joint.sum_out_to(keep), PreconditionError);
}

// -------------------------------------------------------------- PotentialTable

PotentialTable small_potential() {
  KeyCodec codec({2, 3});
  PartitionedTable parts(2, codec.state_space_size());
  // Observations: (0,0) ×3, (1,2) ×2, (0,1) ×1  → m = 6.
  const State a[] = {0, 0};
  const State b[] = {1, 2};
  const State c[] = {0, 1};
  for (int i = 0; i < 3; ++i) {
    const Key k = codec.encode(a);
    parts.partition(parts.owner_of(k)).increment(k);
  }
  for (int i = 0; i < 2; ++i) {
    const Key k = codec.encode(b);
    parts.partition(parts.owner_of(k)).increment(k);
  }
  const Key k = codec.encode(c);
  parts.partition(parts.owner_of(k)).increment(k);
  return PotentialTable(std::move(codec), std::move(parts), 6);
}

TEST(PotentialTable, CountsAndValidation) {
  const PotentialTable table = small_potential();
  EXPECT_TRUE(table.validate());
  EXPECT_EQ(table.sample_count(), 6u);
  EXPECT_EQ(table.distinct_keys(), 3u);
  const State a[] = {0, 0};
  const State b[] = {1, 2};
  const State missing[] = {1, 1};
  EXPECT_EQ(table.count_of(a), 3u);
  EXPECT_EQ(table.count_of(b), 2u);
  EXPECT_EQ(table.count_of(missing), 0u);
}

TEST(PotentialTable, SequentialMarginalizationMatchesHandComputation) {
  const PotentialTable table = small_potential();
  const std::size_t keep0[] = {0};
  const MarginalTable x0 = table.marginalize_sequential(keep0);
  EXPECT_EQ(x0.count_at(0), 4u);  // (0,0)×3 + (0,1)×1
  EXPECT_EQ(x0.count_at(1), 2u);  // (1,2)×2
  const std::size_t keep1[] = {1};
  const MarginalTable x1 = table.marginalize_sequential(keep1);
  EXPECT_EQ(x1.count_at(0), 3u);
  EXPECT_EQ(x1.count_at(1), 1u);
  EXPECT_EQ(x1.count_at(2), 2u);
}

TEST(PotentialTable, ValidateCatchesSampleCountMismatch) {
  KeyCodec codec({2, 2});
  PartitionedTable parts(1, 4);
  parts.partition(0).increment(0, 3);
  const PotentialTable table(std::move(codec), std::move(parts), 99);
  EXPECT_FALSE(table.validate());
}

}  // namespace
}  // namespace wfbn
