// Differential tests over every table-construction strategy: all builders
// must produce exactly the same potential table, whatever their concurrency
// design (the benches then compare only their performance).
#include <gtest/gtest.h>

#include <map>

#include "baselines/builders.hpp"
#include "data/generators.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

std::map<Key, std::uint64_t> counts_of(const PotentialTable& table) {
  std::map<Key, std::uint64_t> out;
  table.partitions().for_each([&](Key key, std::uint64_t c) { out[key] += c; });
  return out;
}

struct BaselineCase {
  BuilderKind kind;
  std::size_t threads;
};

class BuilderDifferential : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(BuilderDifferential, MatchesSequentialReference) {
  const auto [kind, threads] = GetParam();
  const Dataset data = generate_chain_correlated(25000, 12, 2, 0.7, 111);

  BuilderOptions reference_options;
  reference_options.threads = 1;
  auto reference = make_builder(BuilderKind::kSequential, reference_options);
  const auto expected = counts_of(reference->build(data));

  BuilderOptions options;
  options.threads = threads;
  auto builder = make_builder(kind, options);
  const PotentialTable table = builder->build(data);
  EXPECT_EQ(counts_of(table), expected);
  EXPECT_EQ(table.sample_count(), 25000u);
  EXPECT_TRUE(table.validate());

  const BuilderRunStats& stats = builder->stats();
  EXPECT_GT(stats.build_seconds, 0.0);
  EXPECT_EQ(stats.worker_seconds.size(), threads);
  EXPECT_EQ(stats.updates, 25000u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BuilderDifferential,
    ::testing::Values(BaselineCase{BuilderKind::kSequential, 1},
                      BaselineCase{BuilderKind::kGlobalLock, 2},
                      BaselineCase{BuilderKind::kGlobalLock, 8},
                      BaselineCase{BuilderKind::kStriped, 2},
                      BaselineCase{BuilderKind::kStriped, 8},
                      BaselineCase{BuilderKind::kAtomic, 2},
                      BaselineCase{BuilderKind::kAtomic, 8},
                      BaselineCase{BuilderKind::kWaitFree, 2},
                      BaselineCase{BuilderKind::kWaitFree, 8},
                      BaselineCase{BuilderKind::kWaitFreePipelined, 8}),
    [](const auto& param_info) {
      // gtest parameter names must be alphanumeric.
      std::string name(builder_kind_name(param_info.param.kind));
      std::string clean;
      for (const char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) clean += c;
      }
      return clean + "_" + std::to_string(param_info.param.threads) + "t";
    });

TEST(Baselines, LockCountsAreReported) {
  const Dataset data = generate_uniform(5000, 8, 2, 112);
  BuilderOptions options;
  options.threads = 4;
  auto global = make_builder(BuilderKind::kGlobalLock, options);
  (void)global->build(data);
  EXPECT_EQ(global->stats().lock_acquisitions, 5000u);
  auto striped = make_builder(BuilderKind::kStriped, options);
  (void)striped->build(data);
  EXPECT_EQ(striped->stats().lock_acquisitions, 5000u);
  auto wait_free = make_builder(BuilderKind::kWaitFree, options);
  (void)wait_free->build(data);
  EXPECT_EQ(wait_free->stats().lock_acquisitions, 0u);
}

TEST(Baselines, NamesAreStable) {
  for (const BuilderKind kind :
       {BuilderKind::kSequential, BuilderKind::kGlobalLock, BuilderKind::kStriped,
        BuilderKind::kAtomic, BuilderKind::kWaitFree,
        BuilderKind::kWaitFreePipelined}) {
    BuilderOptions options;
    auto builder = make_builder(kind, options);
    EXPECT_EQ(builder->kind(), kind);
    EXPECT_EQ(builder->name(), builder_kind_name(kind));
    EXPECT_FALSE(builder->name().empty());
  }
}

TEST(Baselines, BuildersAreReusable) {
  BuilderOptions options;
  options.threads = 4;
  auto builder = make_builder(BuilderKind::kStriped, options);
  const Dataset a = generate_uniform(3000, 6, 2, 113);
  const Dataset b = generate_uniform(4000, 6, 2, 114);
  EXPECT_EQ(builder->build(a).sample_count(), 3000u);
  EXPECT_EQ(builder->build(b).sample_count(), 4000u);
  // Stats reflect the most recent build only.
  EXPECT_EQ(builder->stats().updates, 4000u);
}

TEST(Baselines, InvalidThreadCountRejected) {
  BuilderOptions options;
  options.threads = 0;
  EXPECT_THROW((void)make_builder(BuilderKind::kStriped, options),
               PreconditionError);
}

}  // namespace
}  // namespace wfbn
