// Tests for the PC-stable learner and the shared orientation rules.
#include <gtest/gtest.h>

#include <tuple>

#include "bn/metrics.hpp"
#include "bn/repository.hpp"
#include "bn/sampling.hpp"
#include "data/generators.hpp"
#include "learn/cheng.hpp"
#include "learn/orientation.hpp"
#include "learn/pc_stable.hpp"
#include "util/rng.hpp"

namespace wfbn {
namespace {

TEST(PcStable, RecoversChainSkeleton) {
  const Dataset data = generate_chain_correlated(60000, 5, 2, 0.85, 131);
  PcStableOptions options;
  options.ci.threads = 2;
  options.ci.mi_threshold = 0.005;
  const PcStableResult result = PcStableLearner(options).learn(data);
  UndirectedGraph expected(5);
  for (NodeId v = 0; v + 1 < 5; ++v) expected.add_edge(v, v + 1);
  const SkeletonMetrics m = compare_skeletons(result.skeleton, expected);
  EXPECT_DOUBLE_EQ(m.f1, 1.0) << "precision=" << m.precision
                              << " recall=" << m.recall;
  EXPECT_GE(result.levels_run, 2u);  // needed level-1 tests to cut 0–2 etc.
}

TEST(PcStable, UniformDataGivesEmptyGraph) {
  const Dataset data = generate_uniform(30000, 6, 2, 132);
  PcStableOptions options;
  options.ci.threads = 2;
  const PcStableResult result = PcStableLearner(options).learn(data);
  EXPECT_EQ(result.skeleton.edge_count(), 0u);
  // Level 0 removes everything; no higher level needed.
  EXPECT_EQ(result.levels_run, 1u);
}

TEST(PcStable, RecoversRepositoryNetworks) {
  for (const auto& [which, samples, epsilon] :
       {std::tuple{RepositoryNetwork::kCancer, 150000ul, 0.0005},
        std::tuple{RepositoryNetwork::kSurvey, 100000ul, 0.002}}) {
    const BayesianNetwork truth = load_network(which);
    const Dataset data = forward_sample(truth, samples, 133, 4);
    PcStableOptions options;
    options.ci.threads = 4;
    options.ci.mi_threshold = epsilon;
    const PcStableResult result = PcStableLearner(options).learn(data);
    const SkeletonMetrics m =
        compare_skeletons(result.skeleton, truth.dag().skeleton());
    EXPECT_GE(m.f1, 0.8) << repository_network_name(which)
                         << ": precision=" << m.precision
                         << " recall=" << m.recall;
  }
}

TEST(PcStable, AgreesWithChengOnEasyStructure) {
  const Dataset data = generate_chain_correlated(50000, 5, 2, 0.8, 134);
  PcStableOptions pc_options;
  pc_options.ci.threads = 2;
  ChengOptions cheng_options;
  cheng_options.ci.threads = 2;
  const PcStableResult pc = PcStableLearner(pc_options).learn(data);
  const ChengResult cheng = ChengLearner(cheng_options).learn(data);
  EXPECT_EQ(pc.skeleton.edges(), cheng.skeleton.edges());
}

TEST(PcStable, SepsetsAreRecorded) {
  const Dataset data = generate_chain_correlated(60000, 3, 2, 0.85, 135);
  PcStableOptions options;
  options.ci.threads = 2;
  const PcStableResult result = PcStableLearner(options).learn(data);
  const auto it = result.sepsets.find({0, 2});
  ASSERT_NE(it, result.sepsets.end());
  EXPECT_EQ(it->second, std::vector<std::size_t>{1});
  EXPECT_GT(result.ci_tests, 0u);
}

TEST(PcStable, MaxLevelCapsConditioning) {
  const Dataset data = generate_chain_correlated(20000, 5, 2, 0.8, 136);
  PcStableOptions options;
  options.ci.threads = 2;
  options.max_level = 0;  // only marginal tests: transitive links survive
  const PcStableResult result = PcStableLearner(options).learn(data);
  EXPECT_TRUE(result.skeleton.has_edge(0, 2));  // never screened off
  EXPECT_EQ(result.levels_run, 1u);
}

// ------------------------------------------------------------- orientation

TEST(Orientation, VStructureFromEmptySepset) {
  UndirectedGraph skeleton(3);
  skeleton.add_edge(0, 2);
  skeleton.add_edge(1, 2);
  SepsetMap sepsets;
  sepsets[{0, 1}] = {};  // 2 not in sepset → collider
  const Dag dag = orient_skeleton(skeleton, sepsets);
  EXPECT_TRUE(dag.has_edge(0, 2));
  EXPECT_TRUE(dag.has_edge(1, 2));
}

TEST(Orientation, NoVStructureWhenMiddleInSepset) {
  UndirectedGraph skeleton(3);  // chain 0 - 2 - 1
  skeleton.add_edge(0, 2);
  skeleton.add_edge(1, 2);
  SepsetMap sepsets;
  sepsets[{0, 1}] = {2};  // separated BY 2 → no collider; edges undecided
  const Dag dag = orient_skeleton(skeleton, sepsets);
  // Fallback orientation low→high: 0→2 and 1→2 would wrongly be a collider
  // only if forced; the contract here is just acyclicity + same skeleton.
  EXPECT_EQ(dag.edge_count(), 2u);
  EXPECT_EQ(dag.topological_order().size(), 3u);
}

TEST(Orientation, MeekRule1Propagates) {
  // 0 → 1 from a collider 0 → 1 ← 3; then 1—2 with 0 ∦ 2 must become 1 → 2.
  UndirectedGraph skeleton(4);
  skeleton.add_edge(0, 1);
  skeleton.add_edge(3, 1);
  skeleton.add_edge(1, 2);
  SepsetMap sepsets;
  sepsets[{0, 3}] = {};   // collider evidence
  sepsets[{0, 2}] = {1};  // chain evidence: 0 ⟂ 2 | 1 (no collider at 1)
  sepsets[{2, 3}] = {1};
  const Dag dag = orient_skeleton(skeleton, sepsets);
  EXPECT_TRUE(dag.has_edge(0, 1));
  EXPECT_TRUE(dag.has_edge(3, 1));
  EXPECT_TRUE(dag.has_edge(1, 2));
}

TEST(Orientation, MeekRule3Orients) {
  // Classic rule-3 diamond: a—b, a—c, a—d, c→b, d→b, c ∦ d ⇒ a→b.
  // Build the two colliders c→b←x and d→b←y … simpler: hand-make sepsets so
  // v-structure detection yields c→b and d→b while a's edges stay undecided.
  UndirectedGraph skeleton(5);  // a=0, b=1, c=2, d=3, e=4
  skeleton.add_edge(0, 1);
  skeleton.add_edge(0, 2);
  skeleton.add_edge(0, 3);
  skeleton.add_edge(2, 1);
  skeleton.add_edge(3, 1);
  skeleton.add_edge(4, 1);  // e → b ← c collider source
  SepsetMap sepsets;
  sepsets[{2, 4}] = {};  // colliders c→b←e
  sepsets[{3, 4}] = {};  // and d→b←e
  sepsets[{2, 3}] = {0};  // c ∦ d? they ARE non-adjacent; separated by a
  const Dag dag = orient_skeleton(skeleton, sepsets);
  EXPECT_TRUE(dag.has_edge(2, 1));
  EXPECT_TRUE(dag.has_edge(3, 1));
  EXPECT_TRUE(dag.has_edge(0, 1));  // rule 3
}

TEST(Orientation, OutputIsAlwaysAcyclicAndSkeletonPreserving) {
  // Randomized property: whatever the sepsets say, the result is a DAG over
  // exactly the skeleton's edges.
  Xoshiro256 rng(137);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 6;
    UndirectedGraph skeleton(n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (rng.uniform01() < 0.4) skeleton.add_edge(u, v);
      }
    }
    SepsetMap sepsets;  // all non-adjacent pairs "separated by empty set"
    const Dag dag = orient_skeleton(skeleton, sepsets);
    EXPECT_EQ(dag.edge_count(), skeleton.edge_count());
    EXPECT_EQ(dag.topological_order().size(), n);  // throws/fails if cyclic
    for (const Edge& e : dag.edges()) {
      EXPECT_TRUE(skeleton.has_edge(e.from, e.to));
    }
  }
}

}  // namespace
}  // namespace wfbn
