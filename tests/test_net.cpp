// Tests for the network serving front end (src/net): framing, the typed
// wire codec, admission control, and the ServeServer/ServeClient pair.
//
// The contracts under test mirror docs/NETWORKING.md:
//  1. Framing integrity — every frame either round-trips bit-exactly or
//     surfaces a typed DataError; a corrupted length field is rejected from
//     the header alone (allocation-bomb guard), and a checksum mismatch is
//     always caught.
//  2. Admission semantics — queue overflow answers OVERLOADED immediately
//     (never a hang), token-bucket refill is deterministic under a fake
//     clock, and a saturating ingest class cannot crowd interactive queries
//     past their own queue bound.
//  3. Blast radius — for every net.*/admission.* fault point: a torn frame,
//     corrupt payload, failed socket op, or injected rejection affects
//     exactly one connection/request; the server and every other connection
//     keep serving.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <limits>
#include <thread>
#include <vector>

#include "core/query.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "net/admission.hpp"
#include "net/frame.hpp"
#include "net/serve_client.hpp"
#include "net/serve_server.hpp"
#include "net/socket_util.hpp"
#include "net/wire.hpp"
#include "serve/persist/durable_store.hpp"
#include "serve/serve_engine.hpp"
#include "serve/table_store.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace wfbn {
namespace {

using net::AdmissionController;
using net::AdmissionOptions;
using net::BoundedQueue;
using net::ClientOptions;
using net::DecodedFrame;
using net::FrameDecoder;
using net::FrameKind;
using net::KeyWidth;
using net::NetError;
using net::Opcode;
using net::RequestClass;
using net::Response;
using net::ServeClient;
using net::ServeServer;
using net::ServerOptions;
using net::Status;
using net::TokenBucket;

PotentialTable build(const Dataset& data, std::size_t threads = 4) {
  WaitFreeBuilderOptions options;
  options.threads = threads;
  return WaitFreeBuilder(options).build(data);
}

WidePotentialTable wide_build(const Dataset& data, std::size_t threads = 4) {
  WideBuilderOptions options;
  options.threads = threads;
  return WideWaitFreeBuilder(options).build(data);
}

net::Request marginal_request(std::uint64_t id, std::vector<std::size_t> vars,
                              KeyWidth width = KeyWidth::kNarrow) {
  net::Request request;
  request.id = id;
  request.opcode = Opcode::kMarginal;
  request.width = width;
  request.query.kind = serve::QueryKind::kMarginal;
  request.query.variables = std::move(vars);
  return request;
}

net::Request conditional_request(std::uint64_t id,
                                 std::vector<std::size_t> vars,
                                 std::vector<Evidence> evidence,
                                 KeyWidth width = KeyWidth::kNarrow) {
  net::Request request;
  request.id = id;
  request.opcode = Opcode::kConditional;
  request.width = width;
  request.query.kind = serve::QueryKind::kConditional;
  request.query.variables = std::move(vars);
  request.query.evidence = std::move(evidence);
  return request;
}

net::Request pair_mi_request(std::uint64_t id, std::size_t i, std::size_t j,
                             KeyWidth width = KeyWidth::kNarrow) {
  net::Request request;
  request.id = id;
  request.opcode = Opcode::kPairMi;
  request.width = width;
  request.query.kind = serve::QueryKind::kPairMi;
  request.query.variables = {i, j};
  return request;
}

net::Request ingest_request(std::uint64_t id, const Dataset& batch,
                            KeyWidth width = KeyWidth::kNarrow) {
  net::Request request;
  request.id = id;
  request.opcode = Opcode::kIngest;
  request.width = width;
  request.ingest_samples = batch.sample_count();
  request.ingest_cardinalities = batch.cardinalities();
  request.ingest_cells.assign(batch.raw().begin(), batch.raw().end());
  return request;
}

net::Request admin_request(std::uint64_t id, Opcode op,
                           KeyWidth width = KeyWidth::kNarrow) {
  net::Request request;
  request.id = id;
  request.opcode = op;
  request.width = width;
  return request;
}

net::Request learn_request(std::uint64_t id,
                           serve::LearnAlgorithm algorithm =
                               serve::LearnAlgorithm::kCheng,
                           KeyWidth width = KeyWidth::kNarrow) {
  net::Request request;
  request.id = id;
  request.opcode = Opcode::kLearn;
  request.width = width;
  request.learn.algorithm = algorithm;
  request.learn.method = CiMethod::kMiThreshold;
  request.learn.mi_threshold = 0.015;
  request.learn.alpha = 0.05;
  request.learn.max_cutset_size = 4;
  request.learn.max_level = 2;
  request.learn.threads = 3;
  return request;
}

bool bytes_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

TEST(Frame, RoundTripsSingleFrame) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> bytes =
      net::encode_frame(FrameKind::kRequest, payload);
  ASSERT_EQ(bytes.size(), net::kFrameHeaderBytes + payload.size());

  FrameDecoder decoder;
  decoder.feed(bytes);
  const std::optional<DecodedFrame> frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, FrameKind::kRequest);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.frames_decoded(), 1u);
}

TEST(Frame, ByteAtATimeAndCoalescedDeliveryAgree) {
  std::vector<std::uint8_t> stream;
  std::vector<std::vector<std::uint8_t>> payloads;
  Xoshiro256 rng(0x11);
  for (int i = 0; i < 5; ++i) {
    std::vector<std::uint8_t> payload(rng.bounded(300));
    for (std::uint8_t& b : payload) {
      b = static_cast<std::uint8_t>(rng.bounded(256));
    }
    net::append_frame(stream, FrameKind::kResponse, payload);
    payloads.push_back(std::move(payload));
  }

  FrameDecoder byte_wise;
  for (const std::uint8_t b : stream) byte_wise.feed(&b, 1);
  FrameDecoder coalesced;
  coalesced.feed(stream);

  for (const std::vector<std::uint8_t>& expected : payloads) {
    const auto a = byte_wise.next();
    const auto b = coalesced.next();
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->payload, expected);
    EXPECT_EQ(b->payload, expected);
  }
  EXPECT_FALSE(byte_wise.next().has_value());
  EXPECT_FALSE(coalesced.next().has_value());
}

TEST(Frame, BadMagicThrowsAndPoisons) {
  std::vector<std::uint8_t> bytes =
      net::encode_frame(FrameKind::kRequest, std::vector<std::uint8_t>{1});
  bytes[0] ^= 0xFF;
  FrameDecoder decoder;
  EXPECT_THROW(decoder.feed(bytes), DataError);
  EXPECT_TRUE(decoder.poisoned());
  const std::uint8_t more = 0;
  EXPECT_THROW(decoder.feed(&more, 1), DataError);
}

TEST(Frame, UnknownVersionAndKindRejected) {
  {
    std::vector<std::uint8_t> bytes =
        net::encode_frame(FrameKind::kRequest, std::vector<std::uint8_t>{});
    bytes[4] = 99;  // version field
    FrameDecoder decoder;
    EXPECT_THROW(decoder.feed(bytes), DataError);
  }
  {
    std::vector<std::uint8_t> bytes =
        net::encode_frame(FrameKind::kRequest, std::vector<std::uint8_t>{});
    bytes[5] = 7;  // kind field
    FrameDecoder decoder;
    EXPECT_THROW(decoder.feed(bytes), DataError);
  }
}

TEST(Frame, OversizedLengthRejectedFromHeaderAlone) {
  // A corrupted length field must be rejected before any payload-sized
  // allocation happens: construct a decoder with a tiny limit and hand it a
  // header claiming a huge payload — only the 20 header bytes ever exist.
  std::vector<std::uint8_t> bytes =
      net::encode_frame(FrameKind::kRequest, std::vector<std::uint8_t>{1, 2});
  const std::uint32_t huge = 0xFFFFFFF0u;
  std::memcpy(bytes.data() + 8, &huge, sizeof huge);  // payload_len field
  FrameDecoder decoder(1024);
  EXPECT_THROW(decoder.feed(bytes.data(), net::kFrameHeaderBytes), DataError);
}

TEST(Frame, PayloadBitFlipCaughtByChecksum) {
  std::vector<std::uint8_t> payload(64, 0xAB);
  std::vector<std::uint8_t> bytes =
      net::encode_frame(FrameKind::kRequest, payload);
  bytes[net::kFrameHeaderBytes + 13] ^= 0x04;
  FrameDecoder decoder;
  EXPECT_THROW(decoder.feed(bytes), DataError);
}

TEST(Frame, InjectedChecksumFaultForcesMismatch) {
  fault::ScopedFaultInjection guard;
  fault::arm(fault::Point::kNetFrameChecksum, 1);
  const std::vector<std::uint8_t> bytes =
      net::encode_frame(FrameKind::kRequest, std::vector<std::uint8_t>{1});
  FrameDecoder decoder;
  EXPECT_THROW(decoder.feed(bytes), DataError);
  EXPECT_EQ(fault::hits(fault::Point::kNetFrameChecksum), 1u);
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

TEST(Wire, RequestRoundTripsEveryOpcodeAtBothWidths) {
  const Dataset batch = generate_uniform(50, 6, 3, 0x77);
  for (const KeyWidth width : {KeyWidth::kNarrow, KeyWidth::kWide}) {
    const std::vector<net::Request> requests = {
        marginal_request(1, {0, 2, 5}, width),
        conditional_request(2, {1, 3}, {{0, 1}, {4, 2}}, width),
        pair_mi_request(3, 2, 4, width),
        ingest_request(4, batch, width),
        admin_request(5, Opcode::kVersion, width),
        admin_request(6, Opcode::kStats, width),
        admin_request(7, Opcode::kFlush, width),
    };
    for (const net::Request& request : requests) {
      const net::Request back =
          net::decode_request(net::encode_request(request));
      EXPECT_EQ(back.id, request.id);
      EXPECT_EQ(back.opcode, request.opcode);
      EXPECT_EQ(back.width, request.width);
      EXPECT_EQ(back.query.variables, request.query.variables);
      ASSERT_EQ(back.query.evidence.size(), request.query.evidence.size());
      for (std::size_t i = 0; i < back.query.evidence.size(); ++i) {
        EXPECT_EQ(back.query.evidence[i].variable,
                  request.query.evidence[i].variable);
        EXPECT_EQ(back.query.evidence[i].state,
                  request.query.evidence[i].state);
      }
      EXPECT_EQ(back.ingest_samples, request.ingest_samples);
      EXPECT_EQ(back.ingest_cardinalities, request.ingest_cardinalities);
      EXPECT_EQ(back.ingest_cells, request.ingest_cells);
    }
  }
}

TEST(Wire, IngestRequestRebuildsIdenticalDataset) {
  const Dataset batch = generate_uniform(200, 8, 2, 0x78);
  const net::Request back =
      net::decode_request(net::encode_request(ingest_request(9, batch)));
  const Dataset rebuilt = back.ingest_dataset();
  EXPECT_EQ(rebuilt.sample_count(), batch.sample_count());
  EXPECT_EQ(rebuilt.cardinalities(), batch.cardinalities());
  EXPECT_TRUE(std::equal(rebuilt.raw().begin(), rebuilt.raw().end(),
                         batch.raw().begin()));
}

TEST(Wire, ResponseRoundTripsEveryShape) {
  Response query_ok;
  query_ok.id = 11;
  query_ok.opcode = Opcode::kConditional;
  query_ok.version = 7;
  query_ok.cache_hit = true;
  query_ok.values = {0.25, 0.75};

  Response error;
  error.id = 12;
  error.opcode = Opcode::kMarginal;
  error.status = Status::kError;
  error.error = "zero-support evidence";

  Response overloaded;
  overloaded.id = 13;
  overloaded.opcode = Opcode::kIngest;
  overloaded.status = Status::kOverloaded;
  overloaded.retry_after_ms = 25;
  overloaded.error = "overloaded";

  Response ingest_ok;
  ingest_ok.id = 14;
  ingest_ok.opcode = Opcode::kIngest;
  ingest_ok.published_version = 3;
  ingest_ok.batch_rows = 1000;

  Response version_ok;
  version_ok.id = 15;
  version_ok.opcode = Opcode::kVersion;
  version_ok.served_version = 9;
  version_ok.durable_version = 8;

  Response stats_ok;
  stats_ok.id = 16;
  stats_ok.opcode = Opcode::kStats;
  stats_ok.served_version = 9;
  stats_ok.cache_hits = 100;
  stats_ok.cache_misses = 20;
  stats_ok.admitted = 115;
  stats_ok.rejected = 5;

  Response flush_ok;
  flush_ok.id = 17;
  flush_ok.opcode = Opcode::kFlush;
  flush_ok.flushed = true;
  flush_ok.served_version = 9;
  flush_ok.durable_version = 9;

  for (const Response& response : {query_ok, error, overloaded, ingest_ok,
                                   version_ok, stats_ok, flush_ok}) {
    const Response back =
        net::decode_response(net::encode_response(response));
    EXPECT_EQ(back.id, response.id);
    EXPECT_EQ(back.opcode, response.opcode);
    EXPECT_EQ(back.status, response.status);
    EXPECT_EQ(back.retry_after_ms, response.retry_after_ms);
    EXPECT_EQ(back.error, response.error);
    EXPECT_EQ(back.version, response.version);
    EXPECT_EQ(back.cache_hit, response.cache_hit);
    EXPECT_TRUE(bytes_equal(back.values, response.values));
    EXPECT_EQ(back.published_version, response.published_version);
    EXPECT_EQ(back.batch_rows, response.batch_rows);
    EXPECT_EQ(back.served_version, response.served_version);
    EXPECT_EQ(back.durable_version, response.durable_version);
    EXPECT_EQ(back.cache_hits, response.cache_hits);
    EXPECT_EQ(back.cache_misses, response.cache_misses);
    EXPECT_EQ(back.admitted, response.admitted);
    EXPECT_EQ(back.rejected, response.rejected);
    EXPECT_EQ(back.flushed, response.flushed);
  }
}

TEST(Wire, MalformedRequestsThrowTyped) {
  // Unknown opcode.
  {
    std::vector<std::uint8_t> payload =
        net::encode_request(marginal_request(1, {0}));
    payload[8] = 99;
    EXPECT_THROW((void)net::decode_request(payload), DataError);
  }
  // Unknown width.
  {
    std::vector<std::uint8_t> payload =
        net::encode_request(marginal_request(1, {0}));
    payload[9] = 9;
    EXPECT_THROW((void)net::decode_request(payload), DataError);
  }
  // Truncated body.
  {
    const std::vector<std::uint8_t> payload =
        net::encode_request(marginal_request(1, {0, 1, 2}));
    EXPECT_THROW((void)net::decode_request(
                     std::span(payload.data(), payload.size() - 3)),
                 DataError);
  }
  // Trailing bytes.
  {
    std::vector<std::uint8_t> payload =
        net::encode_request(marginal_request(1, {0}));
    payload.push_back(0);
    EXPECT_THROW((void)net::decode_request(payload), DataError);
  }
  // Count field larger than the remaining bytes (the allocation bomb): a
  // variable count of ~1 billion in a 20-byte payload must be rejected by
  // arithmetic, not by attempting the reserve.
  {
    std::vector<std::uint8_t> payload =
        net::encode_request(marginal_request(1, {0}));
    const std::uint32_t bomb = 0x3FFFFFFFu;
    std::memcpy(payload.data() + 12, &bomb, sizeof bomb);
    EXPECT_THROW((void)net::decode_request(payload), DataError);
  }
  // Pair-MI with the wrong variable count.
  {
    net::Request request = pair_mi_request(1, 0, 1);
    request.query.variables = {0, 1};
    std::vector<std::uint8_t> payload = net::encode_request(request);
    // Rewrite the count to 2 variables but truncate one off: handled above;
    // here instead encode a marginal-shaped body under the pair-MI opcode.
    payload[8] = static_cast<std::uint8_t>(Opcode::kPairMi);
    const std::uint32_t one = 1;
    std::memcpy(payload.data() + 12, &one, sizeof one);
    EXPECT_THROW((void)net::decode_request(
                     std::span(payload.data(), payload.size() - 4)),
                 DataError);
  }
  // Ingest cell count exceeding the payload.
  {
    const Dataset batch = generate_uniform(10, 4, 2, 0x79);
    std::vector<std::uint8_t> payload =
        net::encode_request(ingest_request(1, batch));
    const std::uint64_t bomb = 1u << 30;
    std::memcpy(payload.data() + 12, &bomb, sizeof bomb);  // samples field
    EXPECT_THROW((void)net::decode_request(payload), DataError);
  }
}

TEST(Wire, ClassOfMapsEveryOpcode) {
  EXPECT_EQ(net::class_of(Opcode::kMarginal), RequestClass::kInteractive);
  EXPECT_EQ(net::class_of(Opcode::kConditional), RequestClass::kInteractive);
  EXPECT_EQ(net::class_of(Opcode::kPairMi), RequestClass::kInteractive);
  EXPECT_EQ(net::class_of(Opcode::kIngest), RequestClass::kIngest);
  EXPECT_EQ(net::class_of(Opcode::kVersion), RequestClass::kAdmin);
  EXPECT_EQ(net::class_of(Opcode::kStats), RequestClass::kAdmin);
  EXPECT_EQ(net::class_of(Opcode::kFlush), RequestClass::kAdmin);
  EXPECT_EQ(net::class_of(Opcode::kLearn), RequestClass::kAdmin);
}

TEST(Wire, LearnRequestRoundTripsBothWidths) {
  for (const KeyWidth width : {KeyWidth::kNarrow, KeyWidth::kWide}) {
    const net::Request request =
        learn_request(21, serve::LearnAlgorithm::kPcStable, width);
    const net::Request back = net::decode_request(net::encode_request(request));
    EXPECT_EQ(back.id, request.id);
    EXPECT_EQ(back.opcode, Opcode::kLearn);
    EXPECT_EQ(back.width, width);
    EXPECT_EQ(back.learn.algorithm, request.learn.algorithm);
    EXPECT_EQ(back.learn.method, request.learn.method);
    EXPECT_EQ(back.learn.mi_threshold, request.learn.mi_threshold);
    EXPECT_EQ(back.learn.alpha, request.learn.alpha);
    EXPECT_EQ(back.learn.max_cutset_size, request.learn.max_cutset_size);
    EXPECT_EQ(back.learn.max_level, request.learn.max_level);
    EXPECT_EQ(back.learn.threads, request.learn.threads);
    // The cancel token is process-local and never crosses the wire.
    EXPECT_EQ(back.learn.cancel, nullptr);
  }
}

TEST(Wire, MalformedLearnRequestsThrowTyped) {
  // Body layout after the 12-byte header:
  //   u8 algorithm | u8 method | u16 reserved | f64 mi_threshold | f64 alpha
  //   | u32 max_cutset_size | u32 max_level | u32 threads
  const std::vector<std::uint8_t> good =
      net::encode_request(learn_request(22));
  ASSERT_NO_THROW((void)net::decode_request(good));

  const auto patched = [&](std::size_t offset, const void* bytes,
                           std::size_t len) {
    std::vector<std::uint8_t> payload = good;
    std::memcpy(payload.data() + offset, bytes, len);
    return payload;
  };
  const std::uint8_t bad_algorithm = 9;
  EXPECT_THROW((void)net::decode_request(patched(12, &bad_algorithm, 1)),
               DataError);
  const std::uint8_t bad_method = 7;
  EXPECT_THROW((void)net::decode_request(patched(13, &bad_method, 1)),
               DataError);
  const double nan_threshold = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)net::decode_request(patched(16, &nan_threshold, 8)),
               DataError);
  const double zero_alpha = 0.0;  // alpha must lie strictly inside (0, 1)
  EXPECT_THROW((void)net::decode_request(patched(24, &zero_alpha, 8)),
               DataError);
  const std::uint32_t zero_cutset = 0;
  EXPECT_THROW((void)net::decode_request(patched(32, &zero_cutset, 4)),
               DataError);
  const std::uint32_t zero_threads = 0;
  EXPECT_THROW((void)net::decode_request(patched(40, &zero_threads, 4)),
               DataError);
  const std::uint32_t too_many_threads = 65;  // wire cap, pre-clamp
  EXPECT_THROW((void)net::decode_request(patched(40, &too_many_threads, 4)),
               DataError);
  // Truncated body and trailing bytes.
  EXPECT_THROW(
      (void)net::decode_request(std::span(good.data(), good.size() - 2)),
      DataError);
  std::vector<std::uint8_t> trailing = good;
  trailing.push_back(0);
  EXPECT_THROW((void)net::decode_request(trailing), DataError);
}

TEST(Wire, LearnResponseRoundTripsEdgeLists) {
  Response learn_ok;
  learn_ok.id = 23;
  learn_ok.opcode = Opcode::kLearn;
  learn_ok.version = 5;
  learn_ok.learn_nodes = 8;
  learn_ok.learn_skeleton = {{0, 1}, {1, 2}, {2, 7}};
  learn_ok.learn_edges = {{1, 0}, {1, 2}};
  learn_ok.learn_ci_tests = 123;
  learn_ok.learn_seconds = 0.75;
  const Response back =
      net::decode_response(net::encode_response(learn_ok));
  EXPECT_EQ(back.id, learn_ok.id);
  EXPECT_EQ(back.opcode, Opcode::kLearn);
  EXPECT_EQ(back.status, Status::kOk);
  EXPECT_EQ(back.version, learn_ok.version);
  EXPECT_EQ(back.learn_nodes, learn_ok.learn_nodes);
  EXPECT_EQ(back.learn_skeleton, learn_ok.learn_skeleton);
  EXPECT_EQ(back.learn_edges, learn_ok.learn_edges);
  EXPECT_EQ(back.learn_ci_tests, learn_ok.learn_ci_tests);
  EXPECT_EQ(back.learn_seconds, learn_ok.learn_seconds);

  // An edge-count bomb is rejected by arithmetic, not by the reserve.
  std::vector<std::uint8_t> payload = net::encode_response(learn_ok);
  const std::uint32_t bomb = 0x2FFFFFFFu;
  // Skeleton count sits after id|op|status|retry|version|nodes|ci|seconds.
  std::memcpy(payload.data() + 8 + 1 + 1 + 2 + 8 + 4 + 8 + 8, &bomb,
              sizeof bomb);
  EXPECT_THROW((void)net::decode_response(payload), DataError);
}

// ---------------------------------------------------------------------------
// Frame-decoder fuzz: random + bit-flipped streams, both key widths
// ---------------------------------------------------------------------------

/// Oracle for one byte stream: the decoder either yields frames (whose
/// payloads then go through decode_request → valid request or DataError) or
/// throws DataError. It must never crash and never buffer past the payload
/// limit.
void fuzz_one_stream(std::span<const std::uint8_t> stream,
                     std::size_t max_payload, std::size_t chunk) {
  FrameDecoder decoder(max_payload);
  std::size_t offset = 0;
  try {
    while (offset < stream.size()) {
      const std::size_t take = std::min(chunk, stream.size() - offset);
      decoder.feed(stream.data() + offset, take);
      offset += take;
      EXPECT_LE(decoder.pending_bytes(), max_payload);
      while (std::optional<DecodedFrame> frame = decoder.next()) {
        try {
          (void)net::decode_request(frame->payload);
        } catch (const DataError&) {
          // A clean per-request error is a valid outcome.
        }
      }
    }
  } catch (const DataError&) {
    EXPECT_TRUE(decoder.poisoned());
  }
}

TEST(FrameFuzz, RandomAndBitFlippedStreams200Seeds) {
  constexpr std::size_t kMaxPayload = 1u << 16;
  const Dataset small_batch = generate_uniform(8, 4, 2, 0x90);
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ULL + 1);
    const KeyWidth width =
        rng.bounded(2) == 0 ? KeyWidth::kNarrow : KeyWidth::kWide;

    // A well-formed stream of frames over the full opcode mix...
    std::vector<std::uint8_t> stream;
    const std::size_t frames = 1 + rng.bounded(4);
    for (std::size_t f = 0; f < frames; ++f) {
      net::Request request;
      switch (rng.bounded(5)) {
        case 0: request = marginal_request(f, {0, 1}, width); break;
        case 1:
          request = conditional_request(f, {0}, {{1, 0}}, width);
          break;
        case 2: request = pair_mi_request(f, 0, 2, width); break;
        case 3: request = ingest_request(f, small_batch, width); break;
        default: request = admin_request(f, Opcode::kStats, width); break;
      }
      net::append_frame(stream, FrameKind::kRequest,
                        net::encode_request(request));
    }

    if (seed % 2 == 0) {
      // ...with random bit flips anywhere (header, length, payload),
      const std::size_t flips = 1 + rng.bounded(8);
      for (std::size_t i = 0; i < flips; ++i) {
        const std::size_t at = rng.bounded(stream.size());
        stream[at] ^= static_cast<std::uint8_t>(1u << rng.bounded(8));
      }
    } else {
      // ...or replaced by pure noise / truncated garbage.
      const std::size_t len = 1 + rng.bounded(512);
      stream.resize(len);
      for (std::uint8_t& b : stream) {
        b = static_cast<std::uint8_t>(rng.bounded(256));
      }
    }
    const std::size_t chunk = 1 + rng.bounded(64);
    fuzz_one_stream(stream, kMaxPayload, chunk);
  }
}

// ---------------------------------------------------------------------------
// Admission control semantics
// ---------------------------------------------------------------------------

TEST(TokenBucket, DeterministicRefillUnderFakeClock) {
  TokenBucket bucket(10.0, 2.0, 0);  // 10 tokens/s, burst 2, t=0

  EXPECT_TRUE(bucket.try_acquire(0));
  EXPECT_TRUE(bucket.try_acquire(0));
  EXPECT_FALSE(bucket.try_acquire(0));  // burst exhausted
  EXPECT_NEAR(static_cast<double>(bucket.next_token_delay_ns()), 1e8,
              1e3);  // one token at 10/s = 100ms

  // 100ms later exactly one token has refilled.
  EXPECT_TRUE(bucket.try_acquire(100'000'000));
  EXPECT_FALSE(bucket.try_acquire(100'000'000));

  // 150ms more = 1.5 tokens: one acquire succeeds, the next fails at 0.5.
  EXPECT_TRUE(bucket.try_acquire(250'000'000));
  EXPECT_FALSE(bucket.try_acquire(250'000'000));
  EXPECT_NEAR(static_cast<double>(bucket.next_token_delay_ns()), 5e7, 1e3);

  // A long idle stretch caps at the burst, never beyond.
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(bucket.try_acquire(10'000'000'000ULL));
  }
  EXPECT_FALSE(bucket.try_acquire(10'000'000'000ULL));

  // A regressing clock is clamped, not misread as a huge refill.
  EXPECT_FALSE(bucket.try_acquire(9'000'000'000ULL));
}

TEST(TokenBucket, ZeroRateMeansUnlimited) {
  TokenBucket bucket(0.0, 0.0, 0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(bucket.try_acquire(0));
  EXPECT_EQ(bucket.next_token_delay_ns(), 0u);
}

TEST(BoundedQueue, OverflowFailsImmediatelyNeverHangs) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  const auto before = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.try_push(3));  // full: immediate false
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            100);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(*queue.pop(), 1);
  EXPECT_TRUE(queue.try_push(3));
}

TEST(BoundedQueue, CloseWakesBlockedPop) {
  BoundedQueue<int> queue(4);
  std::thread popper([&] {
    const std::optional<int> item = queue.pop();
    EXPECT_FALSE(item.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  popper.join();
}

TEST(Admission, RateLimitRejectsWithComputedRetryHint) {
  AdmissionOptions options;
  options.per_class[static_cast<std::size_t>(RequestClass::kAdmin)] = {
      .queue_capacity = 4, .rate_per_sec = 10, .burst = 1};
  AdmissionController controller(options);

  EXPECT_TRUE(controller.admit(RequestClass::kAdmin, 0).admitted);
  const net::AdmissionDecision rejected =
      controller.admit(RequestClass::kAdmin, 0);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.reason, net::RejectReason::kRateLimited);
  EXPECT_EQ(rejected.retry_after_ms, 100);  // (1 token)/(10/s) = 100ms

  // The fake clock advances past the refill: admitted again.
  EXPECT_TRUE(controller.admit(RequestClass::kAdmin, 150'000'000).admitted);

  const net::AdmissionStats stats = controller.stats();
  EXPECT_EQ(stats.admitted[static_cast<std::size_t>(RequestClass::kAdmin)],
            2u);
  EXPECT_EQ(
      stats.rejected_rate[static_cast<std::size_t>(RequestClass::kAdmin)],
      1u);
}

TEST(Admission, DisabledAdmitsEverything) {
  AdmissionOptions options;
  options.enabled = false;
  options.per_class[0] = {.queue_capacity = 1, .rate_per_sec = 0.001,
                          .burst = 1};
  AdmissionController controller(options);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(controller.admit(RequestClass::kInteractive, 0).admitted);
  }
}

TEST(Admission, InjectedRejectForcesOverloadPath) {
  fault::ScopedFaultInjection guard;
  fault::arm(fault::Point::kAdmissionReject, 2);
  AdmissionController controller;
  EXPECT_TRUE(controller.admit(RequestClass::kInteractive, 0).admitted);
  const net::AdmissionDecision d = controller.admit(RequestClass::kInteractive, 0);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, net::RejectReason::kInjected);
  EXPECT_TRUE(controller.admit(RequestClass::kInteractive, 0).admitted);
  EXPECT_EQ(controller.stats().rejected_injected[0], 1u);
}

TEST(Admission, QueueFullAccountingConvertsAdmitToRejection) {
  AdmissionController controller;
  EXPECT_TRUE(controller.admit(RequestClass::kIngest, 0).admitted);
  const std::uint16_t retry =
      controller.note_queue_full(RequestClass::kIngest);
  EXPECT_GT(retry, 0);
  const net::AdmissionStats stats = controller.stats();
  EXPECT_EQ(stats.admitted[static_cast<std::size_t>(RequestClass::kIngest)],
            0u);
  EXPECT_EQ(stats.rejected_queue_full[static_cast<std::size_t>(
                RequestClass::kIngest)],
            1u);
}

// ---------------------------------------------------------------------------
// Server end-to-end
// ---------------------------------------------------------------------------

/// One live narrow-key server over a fresh store; shared by the E2E tests.
struct ServerFixture {
  explicit ServerFixture(ServerOptions options = {},
                         std::size_t rows = 3000)
      : data(generate_uniform(rows, 8, 2, 0xE1)),
        store(build(data)),
        engine(store),
        pool(4),
        server(engine, pool, std::move(options)) {
    server.start();
  }

  ClientOptions client_options() const {
    ClientOptions options;
    options.port = server.port();
    return options;
  }

  Dataset data;
  serve::TableStore store;
  serve::ServeEngine engine;
  ThreadPool pool;
  ServeServer server;
};

TEST(ServeServer, QueriesMatchDirectEngineBitForBit) {
  ServerFixture fx;
  ServeClient client(fx.client_options());
  const QueryEngine reference(fx.store.current()->table(), 1);

  {
    const std::vector<std::size_t> vars = {0, 3};
    const Response r = client.call(marginal_request(1, vars));
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_EQ(r.id, 1u);
    EXPECT_EQ(r.version, 1u);
    EXPECT_TRUE(bytes_equal(r.values, reference.marginal(vars)));
  }
  {
    const std::vector<std::size_t> vars = {2};
    const std::vector<Evidence> evidence = {{1, 0}};
    const Response r = client.call(conditional_request(2, vars, evidence));
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_TRUE(
        bytes_equal(r.values, reference.conditional(vars, evidence)));
  }
  {
    const Response r = client.call(pair_mi_request(3, 0, 7));
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    ASSERT_EQ(r.values.size(), 1u);
    const serve::ServeResult direct = fx.engine.pair_mi(0, 7);
    EXPECT_EQ(r.values[0], direct.values[0]);
  }
}

TEST(ServeServer, IngestPublishesAndQueriesSeeNewVersion) {
  ServerFixture fx;
  ServeClient client(fx.client_options());

  const Dataset batch = generate_uniform(500, 8, 2, 0xE2);
  const Response ingest = client.call(ingest_request(10, batch));
  ASSERT_EQ(ingest.status, Status::kOk) << ingest.error;
  EXPECT_EQ(ingest.published_version, 2u);
  EXPECT_EQ(ingest.batch_rows, 500u);

  const Response version = client.call(admin_request(11, Opcode::kVersion));
  ASSERT_EQ(version.status, Status::kOk);
  EXPECT_EQ(version.served_version, 2u);

  const std::vector<std::size_t> vars = {1};
  const Response query = client.call(marginal_request(12, vars));
  ASSERT_EQ(query.status, Status::kOk);
  EXPECT_EQ(query.version, 2u);
  EXPECT_TRUE(bytes_equal(
      query.values,
      QueryEngine(fx.store.current()->table(), 1).marginal(vars)));
}

TEST(ServeServer, PipelinedRequestsAllAnswered) {
  ServerFixture fx;
  ServeClient client(fx.client_options());
  constexpr std::uint64_t kRequests = 64;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    client.send(marginal_request(i, {i % 8}));
  }
  std::vector<bool> seen(kRequests, false);
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    const Response r = client.receive();
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    ASSERT_LT(r.id, kRequests);
    EXPECT_FALSE(seen[r.id]);
    seen[r.id] = true;
  }
  EXPECT_EQ(client.in_flight(), 0u);
}

TEST(ServeServer, ManyConcurrentClients) {
  ServerFixture fx;
  constexpr std::size_t kClients = 8;
  constexpr std::uint64_t kPerClient = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        ServeClient client(fx.client_options());
        for (std::uint64_t i = 0; i < kPerClient; ++i) {
          const Response r =
              client.call(marginal_request(c * 1000 + i, {(c + i) % 8}));
          if (r.status != Status::kOk || r.values.empty()) {
            failures.fetch_add(1);
            return;
          }
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const net::ServerStats stats = fx.server.stats();
  EXPECT_GE(stats.requests_decoded, kClients * kPerClient);
}

TEST(ServeServer, WidthMismatchIsBadRequestNotDisconnect) {
  ServerFixture fx;
  ServeClient client(fx.client_options());
  const Response r = client.call(marginal_request(1, {0}, KeyWidth::kWide));
  EXPECT_EQ(r.status, Status::kBadRequest);
  // Same connection still serves.
  const Response ok = client.call(marginal_request(2, {0}));
  EXPECT_EQ(ok.status, Status::kOk);
}

TEST(ServeServer, MalformedPayloadIsBadRequestConnectionSurvives) {
  ServerFixture fx;
  ServeClient client(fx.client_options());

  // A frame whose payload passes the checksum but is not a valid request.
  std::vector<std::uint8_t> payload =
      net::encode_request(marginal_request(7, {0}));
  payload[8] = 42;  // invalid opcode
  net::UniqueFd raw = net::connect_tcp("127.0.0.1", fx.server.port(), 5000);
  const std::vector<std::uint8_t> frame =
      net::encode_frame(FrameKind::kRequest, payload);
  ASSERT_EQ(::write(raw.get(), frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
  FrameDecoder decoder;
  std::optional<DecodedFrame> reply;
  while (!reply.has_value()) {
    std::uint8_t buf[4096];
    const ssize_t n = ::read(raw.get(), buf, sizeof buf);
    ASSERT_GT(n, 0);
    decoder.feed(buf, static_cast<std::size_t>(n));
    reply = decoder.next();
  }
  const Response r = net::decode_response(reply->payload);
  EXPECT_EQ(r.status, Status::kBadRequest);
  EXPECT_EQ(r.id, 7u);  // id scraped from the malformed payload

  // The server and unrelated connections are untouched.
  const Response ok = client.call(marginal_request(8, {0}));
  EXPECT_EQ(ok.status, Status::kOk);
  EXPECT_GE(fx.server.stats().bad_requests, 1u);
}

TEST(ServeServer, TornFrameKillsOnlyThatConnection) {
  ServerFixture fx;
  ServeClient healthy(fx.client_options());

  // Garbage bytes: the decoder sees a bad magic and the server must close
  // exactly that connection.
  {
    net::UniqueFd raw = net::connect_tcp("127.0.0.1", fx.server.port(), 5000);
    const char garbage[] = "this is not a wfbn frame at all............";
    ASSERT_GT(::write(raw.get(), garbage, sizeof garbage), 0);
    std::uint8_t buf[16];
    const ssize_t n = ::read(raw.get(), buf, sizeof buf);  // blocks until close
    EXPECT_EQ(n, 0);  // clean EOF from the server side
  }
  // A corrupted payload (checksum mismatch) likewise.
  {
    std::vector<std::uint8_t> frame = net::encode_frame(
        FrameKind::kRequest, net::encode_request(marginal_request(1, {0})));
    frame.back() ^= 0xFF;
    net::UniqueFd raw = net::connect_tcp("127.0.0.1", fx.server.port(), 5000);
    ASSERT_EQ(::write(raw.get(), frame.data(), frame.size()),
              static_cast<ssize_t>(frame.size()));
    std::uint8_t buf[16];
    EXPECT_EQ(::read(raw.get(), buf, sizeof buf), 0);
  }

  const Response ok = healthy.call(marginal_request(2, {1}));
  EXPECT_EQ(ok.status, Status::kOk);
  EXPECT_GE(fx.server.stats().connections_failed, 2u);
}

TEST(WideServeServer, EndToEndAtWideKeys) {
  const Dataset data = generate_chain_correlated(2000, 100, 2, 0.8, 0xE5);
  serve::WideTableStore store(wide_build(data));
  serve::WideServeEngine engine(store);
  ThreadPool pool(4);
  net::WideServeServer server(engine, pool);
  server.start();

  ClientOptions options;
  options.port = server.port();
  ServeClient client(options);

  const std::vector<std::size_t> vars = {62, 63};
  const Response marginal =
      client.call(marginal_request(1, vars, KeyWidth::kWide));
  ASSERT_EQ(marginal.status, Status::kOk) << marginal.error;
  EXPECT_TRUE(bytes_equal(
      marginal.values,
      WideQueryEngine(store.current()->table(), 1).marginal(vars)));

  const Response mi = client.call(pair_mi_request(2, 0, 99, KeyWidth::kWide));
  ASSERT_EQ(mi.status, Status::kOk) << mi.error;
  ASSERT_EQ(mi.values.size(), 1u);

  // Narrow request against the wide server: explicit BAD_REQUEST.
  const Response mismatch = client.call(marginal_request(3, {0}));
  EXPECT_EQ(mismatch.status, Status::kBadRequest);
}

TEST(ServeServer, DurableStoreIngestAndFlushOverNetwork) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "wfbn_net_durable";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const Dataset base = generate_uniform(1000, 8, 2, 0xE6);
  serve::persist::DurableTableStore durable(dir, build(base));
  serve::ServeEngine engine(durable.store());
  ThreadPool pool(4);
  ServeServer server(engine, pool, {}, &durable);
  server.start();

  ClientOptions options;
  options.port = server.port();
  ServeClient client(options);

  const Dataset batch = generate_uniform(400, 8, 2, 0xE7);
  const Response ingest = client.call(ingest_request(1, batch));
  ASSERT_EQ(ingest.status, Status::kOk) << ingest.error;
  EXPECT_EQ(ingest.published_version, 2u);

  const Response flush = client.call(admin_request(2, Opcode::kFlush));
  ASSERT_EQ(flush.status, Status::kOk) << flush.error;
  EXPECT_TRUE(flush.flushed);
  EXPECT_EQ(flush.served_version, 2u);
  EXPECT_EQ(flush.durable_version, 2u);

  const Response query = client.call(marginal_request(3, {4}));
  ASSERT_EQ(query.status, Status::kOk);
  EXPECT_EQ(query.version, 2u);
}

TEST(ServeServer, LearnServedAgainstDurableStoreWhileQueriesFlow) {
  // The acceptance scenario: a LEARN job runs over the network against a
  // live DurableTableStore while a second client's interactive queries keep
  // being answered — learn occupies only the admin dispatcher, and its pool
  // is clamped to options.learn_max_threads.
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "wfbn_net_learn";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const Dataset data = generate_chain_correlated(20000, 8, 2, 0.8, 0xEA);
  serve::persist::DurableTableStore durable(dir, build(data));
  serve::ServeEngine engine(durable.store());
  ThreadPool pool(4);
  ServerOptions options;
  options.learn_max_threads = 2;
  ServeServer server(engine, pool, options, &durable);
  server.start();

  ClientOptions client_options;
  client_options.port = server.port();
  ServeClient learner(client_options);
  ServeClient querier(client_options);

  // Ask for far more workers than the server allows; the clamp (not a
  // rejection) is the contract for an over-eager admin client.
  net::Request request = learn_request(1);
  request.learn.threads = 64;
  learner.send(request);

  // Interactive queries are answered while the learn is in flight (or at
  // worst queued behind nothing — they use a different dispatcher).
  for (std::uint64_t i = 0; i < 16; ++i) {
    const Response r = querier.call(marginal_request(100 + i, {i % 8}));
    ASSERT_EQ(r.status, Status::kOk) << r.error;
  }

  const Response learned = learner.receive(60000);
  ASSERT_EQ(learned.status, Status::kOk) << learned.error;
  EXPECT_EQ(learned.id, 1u);
  EXPECT_EQ(learned.version, 1u);  // stamped with the snapshot it pinned
  EXPECT_EQ(learned.learn_nodes, 8u);
  EXPECT_FALSE(learned.learn_skeleton.empty());
  EXPECT_FALSE(learned.learn_edges.empty());
  EXPECT_GT(learned.learn_ci_tests, 0u);

  // The wire answer matches a direct in-process learn on the same snapshot
  // edge for edge (determinism across pool widths covers the clamp).
  serve::LearnRequest direct;
  direct.algorithm = serve::LearnAlgorithm::kCheng;
  direct.mi_threshold = request.learn.mi_threshold;
  direct.max_cutset_size = request.learn.max_cutset_size;
  direct.threads = 2;
  const serve::LearnedStructure reference = engine.learn_structure(direct);
  EXPECT_EQ(learned.learn_skeleton, reference.skeleton_edges);
  EXPECT_EQ(learned.learn_edges, reference.directed_edges);

  // A malformed learn job (alpha outside (0,1)) is a clean BAD_REQUEST on a
  // connection that keeps serving.
  net::Request bad = learn_request(2);
  bad.learn.alpha = 1.5;  // encoding is permissive; the decoder validates
  learner.send(bad);
  const Response rejected = learner.receive(30000);
  EXPECT_EQ(rejected.status, Status::kBadRequest);
  const Response still_ok = learner.call(admin_request(3, Opcode::kVersion));
  EXPECT_EQ(still_ok.status, Status::kOk);
}

// ---------------------------------------------------------------------------
// Admission over the network
// ---------------------------------------------------------------------------

TEST(ServeServer, IngestFloodGetsOverloadedQueriesKeepFlowing) {
  ServerOptions options;
  options.admission.per_class[static_cast<std::size_t>(
      RequestClass::kIngest)] = {.queue_capacity = 2, .rate_per_sec = 0,
                                 .burst = 0};
  ServerFixture fx(options);

  ServeClient flooder(fx.client_options());
  ServeClient querier(fx.client_options());

  // Pipeline far more ingest batches than the ingest queue holds.
  const Dataset batch = generate_uniform(2000, 8, 2, 0xE8);
  constexpr std::uint64_t kFlood = 24;
  for (std::uint64_t i = 0; i < kFlood; ++i) {
    flooder.send(ingest_request(i, batch));
  }

  // Interactive queries keep being answered while the flood is in flight:
  // they live in their own queue with their own dispatcher.
  for (std::uint64_t i = 0; i < 10; ++i) {
    const Response r = querier.call(marginal_request(1000 + i, {i % 8}));
    ASSERT_EQ(r.status, Status::kOk) << r.error;
  }

  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  for (std::uint64_t i = 0; i < kFlood; ++i) {
    const Response r = flooder.receive(30000);
    if (r.status == Status::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(r.status, Status::kOverloaded);
      EXPECT_GT(r.retry_after_ms, 0);
      ++overloaded;
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(overloaded, 0u);  // the bounded queue said no, explicitly

  const net::AdmissionStats stats = fx.server.admission_stats();
  EXPECT_EQ(stats.rejected_queue_full[static_cast<std::size_t>(
                RequestClass::kIngest)],
            overloaded);
}

TEST(ServeServer, InjectedAdmissionRejectAnswersOverloaded) {
  ServerFixture fx;
  fault::ScopedFaultInjection guard;
  ServeClient client(fx.client_options());
  fault::arm(fault::Point::kAdmissionReject, 1);
  const Response rejected = client.call(marginal_request(1, {0}));
  EXPECT_EQ(rejected.status, Status::kOverloaded);
  EXPECT_GT(rejected.retry_after_ms, 0);
  const Response ok = client.call(marginal_request(2, {0}));
  EXPECT_EQ(ok.status, Status::kOk);
}

// ---------------------------------------------------------------------------
// Fault-point sweep: every net.* point, single-connection blast radius
// ---------------------------------------------------------------------------

TEST(NetFaults, AcceptFaultAbandonsOneConnectionListenerSurvives) {
  ServerFixture fx;
  fault::ScopedFaultInjection guard;
  fault::arm(fault::Point::kNetAccept, 1);

  // The first connection is accepted then dropped by the injected fault: the
  // client observes EOF (or a reset) on its first receive.
  {
    ServeClient doomed(fx.client_options());
    EXPECT_THROW(
        {
          doomed.send(marginal_request(1, {0}));
          (void)doomed.receive(2000);
        },
        std::exception);
  }
  // The listener is untouched: the next connection serves normally.
  ServeClient healthy(fx.client_options());
  const Response ok = healthy.call(marginal_request(2, {0}));
  EXPECT_EQ(ok.status, Status::kOk);
  EXPECT_GE(fault::hits(fault::Point::kNetAccept), 1u);
}

TEST(NetFaults, ServerReadFaultKillsOnlyThatConnection) {
  ServerFixture fx;
  ServeClient healthy(fx.client_options());
  // Prime the healthy connection so it exists server-side.
  ASSERT_EQ(healthy.call(marginal_request(1, {0})).status, Status::kOk);

  fault::ScopedFaultInjection guard;
  ServeClient doomed(fx.client_options());
  fault::arm(fault::Point::kNetRead, 1);
  EXPECT_THROW(
      {
        doomed.send(marginal_request(2, {0}));
        (void)doomed.receive(2000);
      },
      std::exception);
  fault::reset();

  const Response ok = healthy.call(marginal_request(3, {1}));
  EXPECT_EQ(ok.status, Status::kOk);
  EXPECT_GE(fx.server.stats().connections_failed, 1u);
}

TEST(NetFaults, ServerWriteFaultKillsOnlyThatConnection) {
  ServerFixture fx;
  ServeClient healthy(fx.client_options());
  ASSERT_EQ(healthy.call(marginal_request(1, {0})).status, Status::kOk);

  fault::ScopedFaultInjection guard;
  ServeClient doomed(fx.client_options());
  fault::arm(fault::Point::kNetWrite, 1);
  EXPECT_THROW(
      {
        doomed.send(marginal_request(2, {0}));
        (void)doomed.receive(2000);
      },
      std::exception);
  fault::reset();

  const Response ok = healthy.call(marginal_request(3, {1}));
  EXPECT_EQ(ok.status, Status::kOk);
}

TEST(NetFaults, FrameChecksumFaultKillsOnlyThatConnection) {
  ServerFixture fx;
  ServeClient healthy(fx.client_options());
  ASSERT_EQ(healthy.call(marginal_request(1, {0})).status, Status::kOk);

  fault::ScopedFaultInjection guard;
  ServeClient doomed(fx.client_options());
  fault::arm(fault::Point::kNetFrameChecksum, 1);
  EXPECT_THROW(
      {
        doomed.send(marginal_request(2, {0}));
        (void)doomed.receive(2000);
      },
      std::exception);
  fault::reset();

  const Response ok = healthy.call(marginal_request(3, {1}));
  EXPECT_EQ(ok.status, Status::kOk);
  EXPECT_GE(fx.server.stats().connections_failed, 1u);
}

TEST(NetFaults, ClientWriteFaultClosesClientServerSurvives) {
  ServerFixture fx;
  fault::ScopedFaultInjection guard;
  ServeClient doomed(fx.client_options());
  fault::arm(fault::Point::kNetWrite, 1);
  EXPECT_THROW(doomed.send(marginal_request(1, {0})), InjectedFault);
  EXPECT_FALSE(doomed.connected());
  fault::reset();

  ServeClient healthy(fx.client_options());
  EXPECT_EQ(healthy.call(marginal_request(2, {0})).status, Status::kOk);
}

/// Randomized schedules over all five net/admission points against a live
/// server with mixed traffic. Oracle: the server survives every schedule —
/// after reset, a fresh client always gets a correct answer — and affected
/// connections fail with typed errors, never crashes or hangs.
TEST(NetFaults, RandomScheduleSweepServerAlwaysSurvives) {
  ServerFixture fx;
  const Dataset batch = generate_uniform(100, 8, 2, 0xEA);
  fault::ScopedFaultInjection guard;

  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const std::string schedule = fault::arm_random_net_schedule(seed);
    SCOPED_TRACE("schedule: " + schedule);
    for (int c = 0; c < 2; ++c) {
      try {
        ServeClient client(fx.client_options());
        for (std::uint64_t i = 0; i < 6; ++i) {
          net::Request request;
          switch (i % 4) {
            case 0: request = marginal_request(i, {i % 8}); break;
            case 1: request = pair_mi_request(i, 0, 3); break;
            case 2: request = admin_request(i, Opcode::kStats); break;
            default: request = ingest_request(i, batch); break;
          }
          const Response r = client.call(request);
          // OVERLOADED (injected admission rejects) is a valid answer.
          if (r.status != Status::kOk) {
            EXPECT_TRUE(r.status == Status::kOverloaded ||
                        r.status == Status::kError)
                << static_cast<int>(r.status);
          }
        }
      } catch (const std::exception&) {
        // Injected socket/frame faults surface as typed errors on the
        // affected connection — expected.
      }
    }
    fault::reset();
    // The survival oracle: with faults disarmed, the server still answers.
    ServeClient prober(fx.client_options());
    const Response r = prober.call(marginal_request(99, {0}));
    ASSERT_EQ(r.status, Status::kOk) << "server died under " << schedule;
  }
}

}  // namespace
}  // namespace wfbn
