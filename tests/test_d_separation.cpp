// Tests for d-separation (paper §II-A): the three canonical triplets, the
// textbook ASIA independencies, and consistency between graph-derived
// independence and data-estimated conditional MI.
#include <gtest/gtest.h>

#include "bn/d_separation.hpp"
#include "bn/repository.hpp"
#include "bn/sampling.hpp"
#include "core/marginalizer.hpp"
#include "core/info_theory.hpp"
#include "core/wait_free_builder.hpp"

namespace wfbn {
namespace {

TEST(DSeparation, ChainBlocksThroughObservedMiddle) {
  Dag chain(3);  // 0 → 1 → 2
  chain.add_edge(0, 1);
  chain.add_edge(1, 2);
  EXPECT_FALSE(d_separated(chain, 0, 2, {}));
  EXPECT_TRUE(d_separated(chain, 0, 2, {1}));
}

TEST(DSeparation, ForkBlocksThroughObservedCause) {
  Dag fork(3);  // 0 ← 1 → 2
  fork.add_edge(1, 0);
  fork.add_edge(1, 2);
  EXPECT_FALSE(d_separated(fork, 0, 2, {}));
  EXPECT_TRUE(d_separated(fork, 0, 2, {1}));
}

TEST(DSeparation, ColliderOpensWhenObserved) {
  Dag collider(3);  // 0 → 1 ← 2
  collider.add_edge(0, 1);
  collider.add_edge(2, 1);
  EXPECT_TRUE(d_separated(collider, 0, 2, {}));
  EXPECT_FALSE(d_separated(collider, 0, 2, {1}));
}

TEST(DSeparation, ColliderOpensThroughObservedDescendant) {
  Dag g(4);  // 0 → 1 ← 2, 1 → 3
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  g.add_edge(1, 3);
  EXPECT_TRUE(d_separated(g, 0, 2, {}));
  EXPECT_FALSE(d_separated(g, 0, 2, {3}));  // descendant of the collider
}

TEST(DSeparation, LongerTrailCombinations) {
  // 0 → 1 → 2 ← 3 → 4
  Dag g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 2);
  g.add_edge(3, 4);
  EXPECT_TRUE(d_separated(g, 0, 4, {}));        // blocked at collider 2
  EXPECT_FALSE(d_separated(g, 0, 4, {2}));      // collider observed → open
  EXPECT_TRUE(d_separated(g, 0, 4, {2, 3}));    // re-blocked at fork 3
  EXPECT_TRUE(d_separated(g, 0, 4, {2, 1}));    // re-blocked at chain 1
}

TEST(DSeparation, SetArguments) {
  Dag g(5);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(2, 4);
  EXPECT_FALSE(d_separated(g, {0, 1}, {3, 4}, {}));
  EXPECT_TRUE(d_separated(g, {0, 1}, {3, 4}, {2}));
  EXPECT_TRUE(d_separated(g, {3}, {4}, {2}));
  EXPECT_FALSE(d_separated(g, {3}, {4}, {}));  // common cause 2 unobserved
}

TEST(DSeparation, ValidatesInputs) {
  Dag g(3);
  g.add_edge(0, 1);
  EXPECT_THROW((void)d_separated(g, {0}, {0}, {}), PreconditionError);  // X∩Y
  EXPECT_THROW((void)d_separated(g, {0}, {1}, {0}), PreconditionError); // X∩Z
  EXPECT_THROW(
      (void)d_separated(g, std::vector<NodeId>{}, std::vector<NodeId>{1}, {}),
      PreconditionError);
}

TEST(DSeparation, AsiaTextbookIndependencies) {
  const BayesianNetwork asia = load_network(RepositoryNetwork::kAsia);
  const Dag& g = asia.dag();
  const NodeId A = asia.node_by_name("asia");
  const NodeId T = asia.node_by_name("tub");
  const NodeId S = asia.node_by_name("smoke");
  const NodeId L = asia.node_by_name("lung");
  const NodeId B = asia.node_by_name("bronc");
  const NodeId E = asia.node_by_name("either");
  const NodeId X = asia.node_by_name("xray");
  const NodeId D = asia.node_by_name("dysp");

  EXPECT_TRUE(d_separated(g, A, S, {}));        // disconnected roots
  EXPECT_FALSE(d_separated(g, A, S, {E}));      // collider either opens
  EXPECT_TRUE(d_separated(g, X, D, {E, B}));    // xray ⟂ dysp | either, bronc
  EXPECT_FALSE(d_separated(g, X, D, {}));
  EXPECT_TRUE(d_separated(g, T, L, {}));        // tub ⟂ lung marginally
  EXPECT_FALSE(d_separated(g, T, L, {E}));      // explaining away
  EXPECT_TRUE(d_separated(g, S, X, {E}));       // smoke ⟂ xray | either
  EXPECT_FALSE(d_separated(g, S, X, {}));
  EXPECT_TRUE(d_separated(g, B, L, {S}));       // common cause observed
}

TEST(DSeparation, AgreesWithSampledConditionalMi) {
  // Graph independencies must show ≈0 conditional MI in forward-sampled data
  // and graph dependencies must show clearly positive CMI.
  const BayesianNetwork asia = load_network(RepositoryNetwork::kAsia);
  const Dataset data = forward_sample(asia, 200000, 404, 4);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  const Marginalizer marginalizer(4);

  const NodeId S = asia.node_by_name("smoke");
  const NodeId L = asia.node_by_name("lung");
  const NodeId B = asia.node_by_name("bronc");
  const NodeId D = asia.node_by_name("dysp");
  const NodeId E = asia.node_by_name("either");

  // bronc ⟂ lung | smoke (d-separated) → CMI ≈ 0.
  {
    const std::size_t vars[] = {B, L, S};
    const MarginalTable joint = marginalizer.marginalize(table, vars);
    EXPECT_LT(conditional_mutual_information(joint, B, L), 2e-4);
  }
  // dysp depends on bronc even given either (direct edge) → CMI ≫ 0.
  {
    const std::size_t vars[] = {D, B, E};
    const MarginalTable joint = marginalizer.marginalize(table, vars);
    EXPECT_GT(conditional_mutual_information(joint, D, B), 0.05);
  }
  // smoke ⟂ xray | either → CMI ≈ 0.
  {
    const NodeId X = asia.node_by_name("xray");
    const std::size_t vars[] = {S, X, E};
    const MarginalTable joint = marginalizer.marginalize(table, vars);
    EXPECT_LT(conditional_mutual_information(joint, S, X), 2e-4);
  }
}

}  // namespace
}  // namespace wfbn
