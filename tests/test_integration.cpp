// Cross-module integration tests: the full phase-1 pipeline and the complete
// data → learn → evaluate loop, exercised through the public API only.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "bn/metrics.hpp"
#include "bn/repository.hpp"
#include "bn/sampling.hpp"
#include "core/all_pairs_mi.hpp"
#include "core/wait_free_builder.hpp"
#include "data/io.hpp"
#include "learn/cheng.hpp"
#include "learn/chow_liu.hpp"

namespace wfbn {
namespace {

TEST(Integration, Phase1PipelineIsThreadCountInvariant) {
  // The potential table, the MI matrix, and hence every downstream decision
  // must be identical whatever P is — parallelism must never change results.
  const BayesianNetwork truth = load_network(RepositoryNetwork::kSurvey);
  const Dataset data = forward_sample(truth, 40000, 777, 4);

  std::vector<std::vector<double>> matrices;
  for (const std::size_t threads : {1u, 3u, 8u, 32u}) {
    WaitFreeBuilderOptions build_options;
    build_options.threads = threads;
    WaitFreeBuilder builder(build_options);
    const PotentialTable table = builder.build(data);
    AllPairsMi all_pairs(AllPairsOptions{threads, AllPairsStrategy::kFused});
    const MiMatrix mi = all_pairs.compute(table);
    std::vector<double> flat;
    for (std::size_t i = 0; i < mi.size(); ++i) {
      for (std::size_t j = 0; j < mi.size(); ++j) flat.push_back(mi.at(i, j));
    }
    matrices.push_back(std::move(flat));
  }
  for (std::size_t k = 1; k < matrices.size(); ++k) {
    ASSERT_EQ(matrices[k].size(), matrices[0].size());
    for (std::size_t c = 0; c < matrices[0].size(); ++c) {
      EXPECT_DOUBLE_EQ(matrices[k][c], matrices[0][c]);
    }
  }
}

TEST(Integration, CsvToLearnedStructure) {
  // Round-trip through persistence: sample → CSV → reload → learn.
  const BayesianNetwork truth = load_network(RepositoryNetwork::kCancer);
  const Dataset sampled = forward_sample(truth, 120000, 778, 2);
  std::stringstream csv;
  write_csv(sampled, csv);
  const Dataset reloaded = read_csv(csv);

  ChengOptions options;
  options.ci.threads = 4;
  options.ci.mi_threshold = 0.0005;
  const ChengResult result = ChengLearner(options).learn(reloaded);
  const SkeletonMetrics m =
      compare_skeletons(result.skeleton, truth.dag().skeleton());
  EXPECT_GE(m.f1, 0.85);
}

TEST(Integration, ChowLiuApproximatesChengOnTreeStructuredTruth) {
  // CANCER is a tree (4 edges), so Chow–Liu and Cheng should find the same
  // skeleton from the same MI matrix.
  const BayesianNetwork truth = load_network(RepositoryNetwork::kCancer);
  const Dataset data = forward_sample(truth, 150000, 779, 4);
  WaitFreeBuilderOptions build_options;
  build_options.threads = 4;
  WaitFreeBuilder builder(build_options);
  const PotentialTable table = builder.build(data);
  const MiMatrix mi =
      AllPairsMi(AllPairsOptions{4, AllPairsStrategy::kFused}).compute(table);

  const ChowLiuResult tree = chow_liu_tree(mi, 1e-4);
  const SkeletonMetrics m = compare_skeletons(tree.tree, truth.dag().skeleton());
  EXPECT_GE(m.recall, 0.75);
}

TEST(Integration, LearnedAsiaStructureImprovesLikelihoodOverEmpty) {
  const BayesianNetwork truth = load_network(RepositoryNetwork::kAsia);
  const Dataset train = forward_sample(truth, 100000, 780, 4);
  ChengOptions options;
  options.ci.threads = 4;
  options.ci.mi_threshold = 0.002;
  const ChengResult result = ChengLearner(options).learn(train);

  // Fit CPTs of the learned DAG by counting, then compare held-out average
  // log-likelihood against the empty (independence) model.
  const Dataset test = forward_sample(truth, 20000, 781, 4);
  auto fit_and_score = [&](const Dag& dag) {
    BayesianNetwork model(dag, truth.cardinalities());
    for (NodeId v = 0; v < model.node_count(); ++v) {
      const auto& parents = dag.parents(v);
      std::vector<std::uint32_t> parent_cards;
      for (const NodeId p : parents) {
        parent_cards.push_back(truth.cardinalities()[p]);
      }
      // Laplace-smoothed conditional counts.
      const std::uint32_t r = truth.cardinalities()[v];
      std::size_t configs = 1;
      for (const auto pc : parent_cards) configs *= pc;
      std::vector<double> probs(configs * r, 1.0);  // +1 smoothing
      std::vector<State> parent_states(parents.size());
      for (std::size_t i = 0; i < train.sample_count(); ++i) {
        std::size_t config = 0;
        std::size_t stride = 1;
        for (std::size_t k = 0; k < parents.size(); ++k) {
          config += train.at(i, parents[k]) * stride;
          stride *= parent_cards[k];
        }
        probs[config * r + train.at(i, v)] += 1.0;
      }
      for (std::size_t config = 0; config < configs; ++config) {
        double total = 0.0;
        for (std::uint32_t s = 0; s < r; ++s) total += probs[config * r + s];
        for (std::uint32_t s = 0; s < r; ++s) probs[config * r + s] /= total;
      }
      model.set_cpt(v, Cpt::from_probabilities(r, parent_cards, probs));
    }
    return model.average_log_likelihood(test);
  };

  const double learned_ll = fit_and_score(result.oriented);
  const double empty_ll = fit_and_score(Dag(truth.node_count()));
  EXPECT_GT(learned_ll, empty_ll + 0.1);  // clearly better than independence
}

TEST(Integration, BinaryDatasetPipeline) {
  const std::string path =
      std::filesystem::temp_directory_path() / "wfbn_integration.bin";
  const Dataset original = forward_sample(
      load_network(RepositoryNetwork::kEarthquake), 50000, 782, 2);
  write_binary_file(original, path);
  const Dataset loaded = read_binary_file(path);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  const PotentialTable a = builder.build(original);
  const PotentialTable b = builder.build(loaded);
  EXPECT_EQ(a.distinct_keys(), b.distinct_keys());
  a.partitions().for_each([&](Key key, std::uint64_t c) {
    EXPECT_EQ(b.partitions().count_anywhere(key), c);
  });
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wfbn
