// Tests for the CI tester that backs Cheng's phases (MI-threshold and G-test
// decisions against data with known structure).
#include <gtest/gtest.h>

#include "bn/repository.hpp"
#include "bn/sampling.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "learn/independence.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

PotentialTable build(const Dataset& data) {
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  return builder.build(data);
}

TEST(CiTester, DetectsMarginalDependenceOnChainData) {
  const Dataset data = generate_chain_correlated(30000, 4, 2, 0.9, 61);
  const PotentialTable table = build(data);
  CiOptions options;
  options.threads = 2;
  const CiTester tester(table, options);
  EXPECT_FALSE(tester.test(0, 1, {}).independent);
  EXPECT_FALSE(tester.test(0, 3, {}).independent);  // transitively dependent
  EXPECT_GT(tester.pair_mi(0, 1), tester.pair_mi(0, 3));
}

TEST(CiTester, DetectsIndependenceOnUniformData) {
  const Dataset data = generate_uniform(30000, 4, 2, 62);
  const PotentialTable table = build(data);
  const CiTester tester(table, CiOptions{});
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_TRUE(tester.test(i, j, {}).independent);
    }
  }
}

TEST(CiTester, ConditioningScreensOffChain) {
  const Dataset data = generate_chain_correlated(60000, 3, 2, 0.85, 63);
  const PotentialTable table = build(data);
  const CiTester tester(table, CiOptions{});
  const std::size_t middle[] = {1};
  EXPECT_FALSE(tester.test(0, 2, {}).independent);
  EXPECT_TRUE(tester.test(0, 2, middle).independent);
}

TEST(CiTester, GTestMethodAgreesOnClearCases) {
  const Dataset data = generate_chain_correlated(60000, 3, 2, 0.85, 64);
  const PotentialTable table = build(data);
  CiOptions options;
  options.method = CiMethod::kGTest;
  options.alpha = 0.01;
  const CiTester tester(table, options);
  const CiDecision dependent = tester.test(0, 1, {});
  EXPECT_FALSE(dependent.independent);
  EXPECT_LT(dependent.p_value, 1e-6);
  const std::size_t middle[] = {1};
  const CiDecision screened = tester.test(0, 2, middle);
  EXPECT_TRUE(screened.independent);
  EXPECT_GT(screened.p_value, 0.01);
}

TEST(CiTester, ColliderSignatureOnSampledData) {
  // X → Z ← Y: marginally independent, dependent given Z.
  Dag dag(3);
  dag.add_edge(0, 2);
  dag.add_edge(1, 2);
  BayesianNetwork bn(std::move(dag), {2, 2, 2});
  bn.set_cpt(2, Cpt::from_probabilities(
                    2, {2, 2},
                    {0.95, 0.05, 0.10, 0.90, 0.10, 0.90, 0.95, 0.05}));
  const Dataset data = forward_sample(bn, 80000, 65);
  const PotentialTable table = build(data);
  const CiTester tester(table, CiOptions{});
  const std::size_t z[] = {2};
  EXPECT_TRUE(tester.test(0, 1, {}).independent);
  EXPECT_FALSE(tester.test(0, 1, z).independent);
}

TEST(CiTester, CountsTests) {
  const Dataset data = generate_uniform(1000, 3, 2, 66);
  const PotentialTable table = build(data);
  const CiTester tester(table, CiOptions{});
  EXPECT_EQ(tester.tests_performed(), 0u);
  (void)tester.test(0, 1, {});
  (void)tester.test(0, 2, {});
  EXPECT_EQ(tester.tests_performed(), 2u);
}

TEST(CiTester, ValidatesArguments) {
  const Dataset data = generate_uniform(1000, 4, 2, 67);
  const PotentialTable table = build(data);
  const CiTester tester(table, CiOptions{});
  const std::size_t z_with_x[] = {0};
  EXPECT_THROW((void)tester.test(0, 0, {}), PreconditionError);
  EXPECT_THROW((void)tester.test(0, 1, z_with_x), PreconditionError);
  CiOptions bad;
  bad.threads = 0;
  EXPECT_THROW(CiTester(table, bad), PreconditionError);
  CiOptions bad_alpha;
  bad_alpha.alpha = 1.5;
  EXPECT_THROW(CiTester(table, bad_alpha), PreconditionError);
}

TEST(CiTester, ThresholdControlsSensitivity) {
  const Dataset data = generate_chain_correlated(30000, 2, 2, 0.6, 68);
  const PotentialTable table = build(data);
  CiOptions strict;
  strict.mi_threshold = 1.0;  // absurdly high: everything "independent"
  EXPECT_TRUE(CiTester(table, strict).test(0, 1, {}).independent);
  CiOptions loose;
  loose.mi_threshold = 1e-6;
  EXPECT_FALSE(CiTester(table, loose).test(0, 1, {}).independent);
}

}  // namespace
}  // namespace wfbn
