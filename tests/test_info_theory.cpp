// Tests for entropy, mutual information, conditional MI, the G-test and the
// chi-squared machinery (paper §II-C, Definitions 2–3).
#include <gtest/gtest.h>

#include <cmath>

#include "core/info_theory.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

MarginalTable pair_table(std::uint64_t c00, std::uint64_t c10, std::uint64_t c01,
                         std::uint64_t c11) {
  MarginalTable t({0, 1}, {2, 2});
  t.add(0, c00);
  t.add(1, c10);
  t.add(2, c01);
  t.add(3, c11);
  return t;
}

TEST(Entropy, UniformDistributionIsLogK) {
  MarginalTable t({0}, {4});
  for (std::uint64_t cell = 0; cell < 4; ++cell) t.add(cell, 25);
  EXPECT_NEAR(entropy(t), std::log(4.0), 1e-12);
}

TEST(Entropy, DegenerateDistributionIsZero) {
  MarginalTable t({0}, {3});
  t.add(1, 1000);
  EXPECT_DOUBLE_EQ(entropy(t), 0.0);
}

TEST(Entropy, EmptyTableIsZero) {
  MarginalTable t({0}, {2});
  EXPECT_DOUBLE_EQ(entropy(t), 0.0);
}

TEST(Entropy, BinaryEntropyFormula) {
  MarginalTable t({0}, {2});
  t.add(0, 25);
  t.add(1, 75);
  const double expected = -0.25 * std::log(0.25) - 0.75 * std::log(0.75);
  EXPECT_NEAR(entropy(t), expected, 1e-12);
}

TEST(MutualInformation, IndependentVariablesHaveZeroMi) {
  // P(x,y) = P(x)P(y): counts proportional to outer product.
  const MarginalTable t = pair_table(30 * 2, 70 * 2, 30 * 8, 70 * 8);
  EXPECT_NEAR(mutual_information(t), 0.0, 1e-12);
}

TEST(MutualInformation, PerfectlyCorrelatedVariablesShareFullEntropy) {
  const MarginalTable t = pair_table(500, 0, 0, 500);
  EXPECT_NEAR(mutual_information(t), std::log(2.0), 1e-12);
}

TEST(MutualInformation, MatchesHandComputedExample) {
  // Joint counts: (0,0)=40 (1,0)=10 (0,1)=10 (1,1)=40, m=100.
  const MarginalTable t = pair_table(40, 10, 10, 40);
  double expected = 0.0;
  const double joint[2][2] = {{0.4, 0.1}, {0.1, 0.4}};
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      expected += joint[a][b] * std::log(joint[a][b] / 0.25);
    }
  }
  EXPECT_NEAR(mutual_information(t), expected, 1e-12);
}

TEST(MutualInformation, IsSymmetricInTheTwoVariables) {
  MarginalTable xy({0, 1}, {2, 3});
  MarginalTable yx({1, 0}, {3, 2});
  const std::uint64_t counts[2][3] = {{5, 17, 40}, {33, 2, 3}};
  for (State a = 0; a < 2; ++a) {
    for (State b = 0; b < 3; ++b) {
      const State s_xy[] = {a, b};
      const State s_yx[] = {b, a};
      xy.add(xy.index_of(s_xy), counts[a][b]);
      yx.add(yx.index_of(s_yx), counts[a][b]);
    }
  }
  EXPECT_NEAR(mutual_information(xy), mutual_information(yx), 1e-12);
}

TEST(MutualInformation, RequiresPairTable) {
  MarginalTable t({0, 1, 2}, {2, 2, 2});
  EXPECT_THROW((void)mutual_information(t), PreconditionError);
}

TEST(ConditionalMi, ReducesToMiWithNoConditioningVariables) {
  const MarginalTable t = pair_table(40, 10, 10, 40);
  EXPECT_NEAR(conditional_mutual_information(t, 0, 1), mutual_information(t),
              1e-12);
}

TEST(ConditionalMi, ScreensOffCommonCause) {
  // X ← Z → Y with X, Y deterministic copies of Z: I(X;Y) large but
  // I(X;Y|Z) = 0.
  MarginalTable t({0, 1, 2}, {2, 2, 2});  // layout (X, Y, Z)
  const State z0[] = {0, 0, 0};
  const State z1[] = {1, 1, 1};
  t.add(t.index_of(z0), 500);
  t.add(t.index_of(z1), 500);
  EXPECT_NEAR(conditional_mutual_information(t, 0, 1), 0.0, 1e-12);
  const std::size_t keep[] = {0, 1};
  EXPECT_NEAR(mutual_information(t.sum_out_to(keep)), std::log(2.0), 1e-12);
}

TEST(ConditionalMi, DetectsConditionalDependenceOfCollider) {
  // X, Y independent coins; Z = X XOR Y. I(X;Y) = 0 but I(X;Y|Z) = ln 2.
  MarginalTable t({0, 1, 2}, {2, 2, 2});
  for (State x = 0; x < 2; ++x) {
    for (State y = 0; y < 2; ++y) {
      const State s[] = {x, y, static_cast<State>(x ^ y)};
      t.add(t.index_of(s), 250);
    }
  }
  const std::size_t keep[] = {0, 1};
  EXPECT_NEAR(mutual_information(t.sum_out_to(keep)), 0.0, 1e-12);
  EXPECT_NEAR(conditional_mutual_information(t, 0, 1), std::log(2.0), 1e-12);
}

TEST(ConditionalMi, ValidatesArguments) {
  MarginalTable t({0, 1, 2}, {2, 2, 2});
  EXPECT_THROW((void)conditional_mutual_information(t, 0, 0), PreconditionError);
  EXPECT_THROW((void)conditional_mutual_information(t, 0, 9), PreconditionError);
}

TEST(GammaFunctions, MatchKnownValues) {
  // P(1, x) = 1 - e^{-x}.
  for (const double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
    EXPECT_NEAR(regularized_gamma_q(1.0, x), std::exp(-x), 1e-12);
  }
  EXPECT_DOUBLE_EQ(regularized_gamma_p(3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_gamma_q(3.0, 0.0), 1.0);
  // P + Q = 1 across regimes (series vs continued fraction).
  for (const double a : {0.5, 2.0, 10.0, 50.0}) {
    for (const double x : {0.01, 0.5, 1.0, 5.0, 20.0, 100.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0,
                  1e-10);
    }
  }
}

TEST(ChiSquared, MatchesTabulatedCriticalValues) {
  // Standard chi-squared table: P(X >= x) = 0.05.
  EXPECT_NEAR(chi_squared_sf(3.841, 1), 0.05, 2e-4);
  EXPECT_NEAR(chi_squared_sf(5.991, 2), 0.05, 2e-4);
  EXPECT_NEAR(chi_squared_sf(7.815, 3), 0.05, 2e-4);
  EXPECT_NEAR(chi_squared_sf(18.307, 10), 0.05, 2e-4);
  // And the 0.01 column.
  EXPECT_NEAR(chi_squared_sf(6.635, 1), 0.01, 1e-4);
  EXPECT_NEAR(chi_squared_sf(23.209, 10), 0.01, 1e-4);
}

TEST(ChiSquared, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(chi_squared_sf(0.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(chi_squared_sf(-1.0, 5), 1.0);
  EXPECT_LT(chi_squared_sf(1000.0, 5), 1e-100);
  EXPECT_THROW((void)chi_squared_sf(1.0, 0), PreconditionError);
}

TEST(GTest, IndependentDataYieldsHighPValue) {
  const MarginalTable t = pair_table(250, 250, 250, 250);
  const GTestResult r = g_test(t, 0, 1);
  EXPECT_EQ(r.dof, 1u);
  EXPECT_NEAR(r.g, 0.0, 1e-9);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
}

TEST(GTest, DependentDataYieldsLowPValue) {
  const MarginalTable t = pair_table(400, 100, 100, 400);
  const GTestResult r = g_test(t, 0, 1);
  EXPECT_GT(r.g, 100.0);
  EXPECT_LT(r.p_value, 1e-10);
}

TEST(GTest, ConditionalDofScalesWithConditioningSpace) {
  MarginalTable t({0, 1, 2, 3}, {2, 3, 4, 2});  // X=0 (r=2), Y=1 (r=3), Z={2,3}
  t.add(0, 10);  // any content; dof depends only on shape
  const GTestResult r = g_test(t, 0, 1);
  EXPECT_EQ(r.dof, (2u - 1) * (3u - 1) * 4u * 2u);
}

TEST(GTest, EqualsTwoMTimesMi) {
  const MarginalTable t = pair_table(300, 200, 100, 400);
  const GTestResult r = g_test(t, 0, 1);
  EXPECT_NEAR(r.g, 2.0 * 1000.0 * mutual_information(t), 1e-9);
}

}  // namespace
}  // namespace wfbn
