// End-to-end tests for Cheng et al.'s three-phase learner: structure
// recovery on the repository networks, phase bookkeeping, and orientation.
#include <gtest/gtest.h>

#include "bn/metrics.hpp"
#include "bn/repository.hpp"
#include "bn/sampling.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "learn/cheng.hpp"

namespace wfbn {
namespace {

ChengResult learn_network(const BayesianNetwork& truth, std::size_t samples,
                          double epsilon, std::uint64_t seed) {
  const Dataset data = forward_sample(truth, samples, seed, 4);
  ChengOptions options;
  options.ci.threads = 4;
  options.ci.mi_threshold = epsilon;
  return ChengLearner(options).learn(data);
}

TEST(Cheng, RecoversChainSkeletonExactly) {
  const Dataset data = generate_chain_correlated(60000, 6, 2, 0.85, 71);
  ChengOptions options;
  options.ci.threads = 4;
  options.ci.mi_threshold = 0.01;
  const ChengResult result = ChengLearner(options).learn(data);
  UndirectedGraph expected(6);
  for (NodeId v = 0; v + 1 < 6; ++v) expected.add_edge(v, v + 1);
  const SkeletonMetrics m = compare_skeletons(result.skeleton, expected);
  EXPECT_DOUBLE_EQ(m.f1, 1.0) << "precision=" << m.precision
                              << " recall=" << m.recall;
}

TEST(Cheng, UniformDataYieldsEmptyGraph) {
  const Dataset data = generate_uniform(40000, 8, 2, 72);
  ChengOptions options;
  options.ci.threads = 2;
  const ChengResult result = ChengLearner(options).learn(data);
  EXPECT_EQ(result.skeleton.edge_count(), 0u);
  EXPECT_EQ(result.oriented.edge_count(), 0u);
}

struct RecoveryCase {
  RepositoryNetwork which;
  std::size_t samples;
  double epsilon;
  double min_f1;
};

class ChengRecovery : public ::testing::TestWithParam<RecoveryCase> {};

TEST_P(ChengRecovery, RecoversRepositorySkeleton) {
  const RecoveryCase c = GetParam();
  const BayesianNetwork truth = load_network(c.which);
  const ChengResult result = learn_network(truth, c.samples, c.epsilon, 500);
  const SkeletonMetrics m =
      compare_skeletons(result.skeleton, truth.dag().skeleton());
  EXPECT_GE(m.f1, c.min_f1) << "precision=" << m.precision
                            << " recall=" << m.recall
                            << " edges=" << result.skeleton.edge_count();
}

INSTANTIATE_TEST_SUITE_P(
    Networks, ChengRecovery,
    ::testing::Values(
        // ASIA's asia→tub edge carries ~1e-4 nats at these CPTs — every
        // threshold-based learner misses it at reasonable sample sizes, so
        // the F1 target reflects 7/8 edges.
        RecoveryCase{RepositoryNetwork::kAsia, 150000, 0.002, 0.9},
        RecoveryCase{RepositoryNetwork::kCancer, 150000, 0.0005, 0.85},
        RecoveryCase{RepositoryNetwork::kEarthquake, 150000, 0.0003, 0.85},
        RecoveryCase{RepositoryNetwork::kSurvey, 100000, 0.002, 0.8},
        RecoveryCase{RepositoryNetwork::kSachs, 60000, 0.005, 0.8},
        RecoveryCase{RepositoryNetwork::kChild, 100000, 0.004, 0.8},
        RecoveryCase{RepositoryNetwork::kAlarm, 150000, 0.004, 0.8}),
    [](const auto& param_info) {
      return repository_network_name(param_info.param.which);
    });

TEST(Cheng, PhaseBookkeepingIsConsistent) {
  const BayesianNetwork truth = load_network(RepositoryNetwork::kSurvey);
  const ChengResult result = learn_network(truth, 50000, 0.002, 501);
  // Draft edges + thickened − thinned == final edge count.
  EXPECT_EQ(result.draft_edge_count + result.thickening_added -
                result.thinning_removed,
            result.skeleton.edge_count());
  EXPECT_GT(result.ci_tests, 0u);
  EXPECT_GE(result.timings.drafting, 0.0);
  // Oriented graph has exactly the skeleton's edges.
  EXPECT_EQ(result.oriented.edge_count(), result.skeleton.edge_count());
  for (const Edge& e : result.oriented.edges()) {
    EXPECT_TRUE(result.skeleton.has_edge(e.from, e.to));
  }
}

TEST(Cheng, LearnFromTableMatchesLearnFromData) {
  const Dataset data = generate_chain_correlated(30000, 5, 2, 0.8, 73);
  ChengOptions options;
  options.ci.threads = 2;
  const ChengLearner learner(options);
  WaitFreeBuilderOptions builder_options;
  builder_options.threads = 2;
  WaitFreeBuilder builder(builder_options);
  const PotentialTable table = builder.build(data);
  const ChengResult from_data = learner.learn(data);
  const ChengResult from_table = learner.learn(table);
  EXPECT_EQ(from_data.skeleton.edges(), from_table.skeleton.edges());
  EXPECT_EQ(from_data.oriented.edges(), from_table.oriented.edges());
}

TEST(Cheng, OrientationFindsCollider) {
  // X → Z ← Y: the learner should leave X—Y out and orient both arms into Z.
  // The CPT is asymmetric (NOT XOR-like): both arms must carry *marginal*
  // dependence, since MI-threshold drafting is blind to pure-XOR colliders.
  Dag dag(3);
  dag.add_edge(0, 2);
  dag.add_edge(1, 2);
  BayesianNetwork bn(std::move(dag), {2, 2, 2});
  bn.set_cpt(2, Cpt::from_probabilities(
                    2, {2, 2},
                    {0.95, 0.05, 0.35, 0.65, 0.65, 0.35, 0.05, 0.95}));
  const Dataset data = forward_sample(bn, 80000, 74);
  ChengOptions options;
  options.ci.threads = 2;
  options.ci.mi_threshold = 0.005;
  const ChengResult result = ChengLearner(options).learn(data);
  ASSERT_TRUE(result.skeleton.has_edge(0, 2));
  ASSERT_TRUE(result.skeleton.has_edge(1, 2));
  ASSERT_FALSE(result.skeleton.has_edge(0, 1));
  EXPECT_TRUE(result.oriented.has_edge(0, 2));
  EXPECT_TRUE(result.oriented.has_edge(1, 2));
}

TEST(Cheng, ThinningRemovesRedundantTriangleEdge) {
  // Chain X0 → X1 → X2 with very strong links: the drafting phase adds the
  // spurious X0–X2 edge first or defers it; after thinning the triangle must
  // be reduced to the true chain.
  const Dataset data = generate_chain_correlated(120000, 3, 2, 0.9, 75);
  ChengOptions options;
  options.ci.threads = 2;
  options.ci.mi_threshold = 0.005;
  const ChengResult result = ChengLearner(options).learn(data);
  EXPECT_TRUE(result.skeleton.has_edge(0, 1));
  EXPECT_TRUE(result.skeleton.has_edge(1, 2));
  EXPECT_FALSE(result.skeleton.has_edge(0, 2));
}

TEST(Cheng, SepsetsRecordedForSeparatedPairs) {
  const Dataset data = generate_chain_correlated(60000, 3, 2, 0.85, 76);
  ChengOptions options;
  options.ci.threads = 2;
  const ChengResult result = ChengLearner(options).learn(data);
  const auto it = result.sepsets.find({0, 2});
  ASSERT_NE(it, result.sepsets.end());
  EXPECT_EQ(it->second, std::vector<std::size_t>{1});
}

TEST(Cheng, GTestMethodAlsoRecoversStructure) {
  const Dataset data = generate_chain_correlated(60000, 5, 2, 0.85, 77);
  ChengOptions options;
  options.ci.threads = 2;
  options.ci.method = CiMethod::kGTest;
  options.ci.alpha = 1e-4;
  const ChengResult result = ChengLearner(options).learn(data);
  UndirectedGraph expected(5);
  for (NodeId v = 0; v + 1 < 5; ++v) expected.add_edge(v, v + 1);
  const SkeletonMetrics m = compare_skeletons(result.skeleton, expected);
  EXPECT_GE(m.recall, 0.99);
  EXPECT_GE(m.precision, 0.7);
}

TEST(Cheng, DeterministicAcrossThreadCounts) {
  const Dataset data = generate_chain_correlated(30000, 6, 2, 0.8, 78);
  ChengOptions one;
  one.ci.threads = 1;
  ChengOptions eight;
  eight.ci.threads = 8;
  const ChengResult a = ChengLearner(one).learn(data);
  const ChengResult b = ChengLearner(eight).learn(data);
  EXPECT_EQ(a.skeleton.edges(), b.skeleton.edges());
  EXPECT_EQ(a.oriented.edges(), b.oriented.edges());
}

}  // namespace
}  // namespace wfbn
