// Tests for the multicore cost model and the scaling simulator — the
// substitution for the paper's 32-core testbed. These tests pin down the
// *shape* properties the figures rely on (monotonicity, near-linear wait-free
// speedup, lock-baseline saturation/regression) rather than absolute times.
#include <gtest/gtest.h>

#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "sim/cost_model.hpp"
#include "sim/scaling_sim.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

const MachineModel& calibrated() {
  static const MachineModel model = MachineModel::calibrate(50000, 7);
  return model;
}

TEST(MachineModel, CalibrationProducesPlausibleCosts) {
  const MachineModel& model = calibrated();
  // All measured costs must be positive and in a sane nanosecond band.
  for (const double cost :
       {model.t_encode_per_var, model.t_update, model.t_push, model.t_pop,
        model.t_project_per_var, model.t_entry_visit, model.t_mutex,
        model.t_barrier_per_core}) {
    EXPECT_GT(cost, 0.0);
    EXPECT_LT(cost, 1e-5);  // < 10µs per op on any plausible machine
  }
  // A hashtable update costs more than a single encode multiply-add.
  EXPECT_GT(model.t_update, model.t_encode_per_var);
}

TEST(MachineModel, CalibrationRejectsTinySampleCounts) {
  EXPECT_THROW(MachineModel::calibrate(10), PreconditionError);
}

BuildStats stats_for(std::size_t threads, std::size_t samples = 20000) {
  const Dataset data = generate_uniform(samples, 20, 2, 7);
  WaitFreeBuilderOptions options;
  options.threads = threads;
  WaitFreeBuilder builder(options);
  (void)builder.build(data);
  return builder.stats();
}

TEST(CostModel, WaitFreePredictionScalesDown) {
  const MachineModel& model = calibrated();
  const double t1 = predict_wait_free_seconds(model, stats_for(1), 20);
  const double t8 = predict_wait_free_seconds(model, stats_for(8), 20);
  const double t32 = predict_wait_free_seconds(model, stats_for(32), 20);
  EXPECT_GT(t1, t8);
  EXPECT_GT(t8, t32);
  // Near-linear: 8 cores between 4x and 8x, 32 cores between 12x and 32x.
  EXPECT_GT(t1 / t8, 4.0);
  EXPECT_LE(t1 / t8, 8.1);
  EXPECT_GT(t1 / t32, 12.0);
  EXPECT_LE(t1 / t32, 32.5);
}

TEST(CostModel, WaitFreePredictionLinearInRows) {
  const MachineModel& model = calibrated();
  const double small = predict_wait_free_seconds(model, stats_for(4, 10000), 20);
  const double large = predict_wait_free_seconds(model, stats_for(4, 40000), 20);
  EXPECT_NEAR(large / small, 4.0, 0.6);
}

TEST(CostModel, LockedBaselineSaturatesThenRegresses) {
  const MachineModel& model = calibrated();
  constexpr std::uint64_t kRows = 1000000;
  const double t1 = predict_locked_seconds(model, kRows, 30, 1, 256);
  std::vector<double> speedups;
  for (const std::size_t p : {2u, 4u, 8u, 16u, 32u, 64u}) {
    speedups.push_back(t1 / predict_locked_seconds(model, kRows, 30, p, 256));
  }
  // Speedup is bounded well below linear at 32 cores...
  EXPECT_LT(speedups[4], 16.0);
  // ...and the curve eventually turns down (paper Fig. 3b past 16 cores).
  double peak = 0.0;
  for (const double s : speedups) peak = std::max(peak, s);
  EXPECT_GT(peak, speedups.back());
}

TEST(CostModel, WaitFreeBeatsLockedAtScale) {
  const MachineModel& model = calibrated();
  const Dataset data = generate_uniform(50000, 30, 2, 8);
  WaitFreeBuilderOptions options;
  options.threads = 32;
  WaitFreeBuilder builder(options);
  (void)builder.build(data);
  const double wf = predict_wait_free_seconds(model, builder.stats(), 30);
  const double locked = predict_locked_seconds(model, 50000, 30, 32, 256);
  EXPECT_LT(wf, locked);
}

TEST(CostModel, AtomicBetweenWaitFreeAndLocked) {
  const MachineModel& model = calibrated();
  const double atomic32 = predict_atomic_seconds(model, 1000000, 30, 32);
  const double locked32 = predict_locked_seconds(model, 1000000, 30, 32, 256);
  EXPECT_LT(atomic32, locked32);  // no mutex round trip
  const double atomic1 = predict_atomic_seconds(model, 1000000, 30, 1);
  EXPECT_LT(atomic32, atomic1);   // still parallelizes
}

TEST(CostModel, SweepPredictionUsesMakespan) {
  const MachineModel& model = calibrated();
  const std::vector<std::uint64_t> balanced = {100, 100, 100, 100};
  const std::vector<std::uint64_t> imbalanced = {400, 0, 0, 0};
  const double t_balanced = predict_sweep_seconds(model, balanced, 2, 10);
  const double t_imbalanced = predict_sweep_seconds(model, imbalanced, 2, 10);
  EXPECT_NEAR(t_imbalanced / t_balanced, 4.0, 1e-9);
  // Sweeps scale linearly.
  EXPECT_NEAR(predict_sweep_seconds(model, balanced, 2, 20) / t_balanced, 2.0,
              1e-9);
}

TEST(ScalingSimulator, WaitFreeCurveHasNormalizedSpeedups) {
  const ScalingSimulator sim(calibrated());
  const Dataset data = generate_uniform(20000, 16, 2, 9);
  const ScalingCurve curve = sim.wait_free_construction(data, {1, 2, 4, 8});
  ASSERT_EQ(curve.points.size(), 4u);
  EXPECT_DOUBLE_EQ(curve.points[0].speedup, 1.0);
  for (std::size_t k = 1; k < curve.points.size(); ++k) {
    EXPECT_GT(curve.points[k].speedup, curve.points[k - 1].speedup);
  }
}

TEST(ScalingSimulator, AllPairsMiCurveScales) {
  const ScalingSimulator sim(calibrated());
  const Dataset data = generate_uniform(20000, 12, 2, 10);
  const ScalingCurve curve = sim.all_pairs_mi(data, {1, 4, 16});
  ASSERT_EQ(curve.points.size(), 3u);
  EXPECT_GT(curve.points[2].speedup, curve.points[1].speedup);
  EXPECT_GT(curve.points[1].speedup, 2.0);
}

TEST(ScalingSimulator, LockedCurveMatchesAnalyticModel) {
  const ScalingSimulator sim(calibrated());
  const ScalingCurve curve = sim.locked_construction(100000, 30, {1, 8});
  EXPECT_DOUBLE_EQ(
      curve.points[0].seconds,
      predict_locked_seconds(sim.model(), 100000, 30, 1, 256));
  EXPECT_DOUBLE_EQ(
      curve.points[1].seconds,
      predict_locked_seconds(sim.model(), 100000, 30, 8, 256));
}

TEST(ScalingSimulator, HeadlineBandReproduced) {
  // The paper's headline: 23.5× at 32 cores for phase 1. Target band 15–32×
  // for the simulated pipeline (see EXPERIMENTS.md).
  const ScalingSimulator sim(calibrated());
  const Dataset data = generate_uniform(50000, 30, 2, 11);
  const ScalingCurve build = sim.wait_free_construction(data, {1, 32});
  const ScalingCurve mi = sim.all_pairs_mi(data, {1, 32});
  const double pipeline_1 = build.points[0].seconds + mi.points[0].seconds;
  const double pipeline_32 = build.points[1].seconds + mi.points[1].seconds;
  const double speedup = pipeline_1 / pipeline_32;
  EXPECT_GT(speedup, 15.0);
  EXPECT_LT(speedup, 33.0);
}

TEST(ScalingSimulator, FillSpeedupsHandlesEmptyAndZero) {
  ScalingCurve empty{"x", {}};
  fill_speedups(empty);  // no crash
  ScalingCurve curve{"y", {{1, 2.0, 0.0}, {2, 1.0, 0.0}}};
  fill_speedups(curve);
  EXPECT_DOUBLE_EQ(curve.points[0].speedup, 1.0);
  EXPECT_DOUBLE_EQ(curve.points[1].speedup, 2.0);
}

}  // namespace
}  // namespace wfbn
