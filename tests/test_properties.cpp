// Cross-module property tests: randomized differential checks that tie the
// parallel implementations to brute-force reference computations on the raw
// data, swept over dataset shapes (TEST_P).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "bn/repository.hpp"
#include "bn/sampling.hpp"
#include "core/info_theory.hpp"
#include "core/marginalizer.hpp"
#include "core/query.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "util/rng.hpp"

namespace wfbn {
namespace {

struct Shape {
  std::size_t samples;
  std::size_t n;
  std::uint32_t r;
  const char* flavor;  // "uniform" | "chain" | "skewed"
};

Dataset make_data(const Shape& shape, std::uint64_t seed) {
  if (std::string_view(shape.flavor) == "chain") {
    return generate_chain_correlated(shape.samples, shape.n, shape.r, 0.7, seed);
  }
  if (std::string_view(shape.flavor) == "skewed") {
    return generate_skewed(shape.samples, shape.n, shape.r, 1e-3, 0.8, seed);
  }
  return generate_uniform(shape.samples, shape.n, shape.r, seed);
}

class PipelineProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(PipelineProperty, QueryEngineMatchesBruteForceConditional) {
  const Shape shape = GetParam();
  const Dataset data = make_data(shape, 201);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  const QueryEngine engine(table, 4);

  Xoshiro256 rng(202);
  for (int trial = 0; trial < 10; ++trial) {
    // Random disjoint query variable + evidence set.
    const std::size_t query_var = rng.bounded(shape.n);
    std::vector<Evidence> evidence;
    for (std::size_t v = 0; v < shape.n && evidence.size() < 2; ++v) {
      if (v != query_var && rng.uniform01() < 0.3) {
        evidence.push_back(Evidence{v, static_cast<State>(rng.bounded(shape.r))});
      }
    }

    // Brute force over the raw matrix.
    std::vector<std::uint64_t> counts(shape.r, 0);
    std::uint64_t support = 0;
    for (std::size_t i = 0; i < data.sample_count(); ++i) {
      bool match = true;
      for (const Evidence& e : evidence) {
        if (data.at(i, e.variable) != e.state) match = false;
      }
      if (!match) continue;
      ++support;
      ++counts[data.at(i, query_var)];
    }
    const std::size_t vars[] = {query_var};
    if (support == 0) {
      EXPECT_THROW((void)engine.conditional(vars, evidence), DataError);
      continue;
    }
    const std::vector<double> p = engine.conditional(vars, evidence);
    for (std::uint32_t s = 0; s < shape.r; ++s) {
      EXPECT_NEAR(p[s],
                  static_cast<double>(counts[s]) / static_cast<double>(support),
                  1e-12);
    }
  }
}

TEST_P(PipelineProperty, MarginalizationCommutesWithSumOut) {
  // marginalize(V) then sum_out_to(W ⊂ V) must equal marginalize(W) directly.
  const Shape shape = GetParam();
  if (shape.n < 3) GTEST_SKIP();
  const Dataset data = make_data(shape, 203);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  const Marginalizer marginalizer(3);

  const std::size_t big[] = {0, shape.n / 2, shape.n - 1};
  const std::size_t small[] = {0, shape.n - 1};
  const MarginalTable direct = marginalizer.marginalize(table, small);
  const MarginalTable via_big =
      marginalizer.marginalize(table, big).sum_out_to(small);
  ASSERT_EQ(direct.cell_count(), via_big.cell_count());
  for (std::uint64_t cell = 0; cell < direct.cell_count(); ++cell) {
    EXPECT_EQ(direct.count_at(cell), via_big.count_at(cell));
  }
}

TEST_P(PipelineProperty, EntropyDecomposesMutualInformation) {
  // I(X;Y) computed by the pair-table routine equals H(X)+H(Y)−H(X,Y)
  // computed from independently marginalized tables.
  const Shape shape = GetParam();
  if (shape.n < 2) GTEST_SKIP();
  const Dataset data = make_data(shape, 204);
  WaitFreeBuilderOptions options;
  options.threads = 2;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  const Marginalizer marginalizer(2);

  const std::size_t x = 0;
  const std::size_t y = shape.n - 1;
  const std::size_t xv[] = {x};
  const std::size_t yv[] = {y};
  const std::size_t xy[] = {x, y};
  const MarginalTable joint = marginalizer.marginalize(table, xy);
  const double h_x = entropy(marginalizer.marginalize(table, xv));
  const double h_y = entropy(marginalizer.marginalize(table, yv));
  EXPECT_NEAR(mutual_information(joint), h_x + h_y - entropy(joint), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelineProperty,
    ::testing::Values(Shape{5000, 4, 2, "uniform"},
                      Shape{20000, 10, 2, "chain"},
                      Shape{8000, 6, 3, "uniform"},
                      Shape{10000, 12, 2, "skewed"},
                      Shape{3000, 3, 4, "uniform"},
                      Shape{15000, 20, 2, "chain"}),
    [](const auto& param_info) {
      const Shape& s = param_info.param;
      return std::string(s.flavor) + "_m" + std::to_string(s.samples) + "_n" +
             std::to_string(s.n) + "_r" + std::to_string(s.r);
    });

TEST(PipelineProperty, SampledNetworksBuildIdenticallyAcrossBuilders) {
  for (const RepositoryNetwork which :
       {RepositoryNetwork::kAsia, RepositoryNetwork::kSachs,
        RepositoryNetwork::kChild}) {
    const BayesianNetwork bn = load_network(which);
    const Dataset data = forward_sample(bn, 20000, 205, 2);
    WaitFreeBuilderOptions wf_options;
    wf_options.threads = 8;
    WaitFreeBuilder wait_free(wf_options);
    const PotentialTable parallel = wait_free.build(data);

    std::map<Key, std::uint64_t> reference;
    const KeyCodec codec = data.codec();
    for (std::size_t i = 0; i < data.sample_count(); ++i) {
      ++reference[codec.encode(data.row(i))];
    }
    EXPECT_EQ(parallel.distinct_keys(), reference.size())
        << repository_network_name(which);
    bool all_match = true;
    parallel.partitions().for_each([&](Key key, std::uint64_t c) {
      const auto it = reference.find(key);
      if (it == reference.end() || it->second != c) all_match = false;
    });
    EXPECT_TRUE(all_match) << repository_network_name(which);
  }
}

TEST(PipelineProperty, PipelinedBatchSizeOneIsCorrect) {
  const Dataset data = generate_uniform(5000, 8, 2, 206);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  options.pipelined = true;
  options.pipeline_batch = 1;  // drain after every row — maximal interleaving
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  EXPECT_EQ(table.sample_count(), 5000u);
  EXPECT_EQ(table.partitions().total_count(), 5000u);
  EXPECT_TRUE(table.partitions().ownership_invariant_holds());
}

}  // namespace
}  // namespace wfbn
