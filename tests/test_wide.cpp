// Tests for the wide-key (128-bit) extension: codec packing, hashtable,
// wait-free construction, marginalization and all-pairs MI beyond the 64-bit
// joint-state-space limit.
#include <gtest/gtest.h>

#include <map>

#include "core/all_pairs_mi.hpp"
#include "core/wait_free_builder.hpp"
#include "core/marginalizer.hpp"
#include "core/info_theory.hpp"
#include "data/generators.hpp"
#include "util/rng.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

TEST(WideKeyCodec, RoundTripsBeyondSixtyFourBits) {
  // 100 binary variables (2^100 states) — impossible for the 64-bit codec.
  EXPECT_THROW(KeyCodec::uniform(100, 2), DataError);
  const WideKeyCodec codec = WideKeyCodec::uniform(100, 2);
  Xoshiro256 rng(301);
  std::vector<State> states(100);
  std::vector<State> decoded(100);
  for (int trial = 0; trial < 500; ++trial) {
    for (auto& s : states) s = static_cast<State>(rng.bounded(2));
    const WideKey key = codec.encode(states);
    codec.decode_all(key, decoded);
    EXPECT_EQ(decoded, states);
  }
}

TEST(WideKeyCodec, TernarySixtyVariables) {
  EXPECT_THROW(KeyCodec::uniform(60, 3), DataError);  // 3^60 ≫ 2^63
  const WideKeyCodec codec = WideKeyCodec::uniform(60, 3);
  Xoshiro256 rng(302);
  std::vector<State> states(60);
  for (int trial = 0; trial < 200; ++trial) {
    for (auto& s : states) s = static_cast<State>(rng.bounded(3));
    const WideKey key = codec.encode(states);
    for (std::size_t j = 0; j < 60; ++j) {
      ASSERT_EQ(codec.decode(key, j), states[j]);
    }
  }
}

TEST(WideKeyCodec, SpillsToSecondWordExactlyWhenNeeded) {
  const WideKeyCodec codec = WideKeyCodec::uniform(100, 2);
  // First 63 binary variables fit the lo word; the rest go hi.
  for (std::size_t j = 0; j < 63; ++j) EXPECT_EQ(codec.word_of(j), 0u);
  for (std::size_t j = 63; j < 100; ++j) EXPECT_EQ(codec.word_of(j), 1u);
}

TEST(WideKeyCodec, RejectsTrulyEnormousSpaces) {
  EXPECT_THROW(WideKeyCodec::uniform(127, 2), DataError);  // 2^127 > 2^126
  EXPECT_NO_THROW(WideKeyCodec::uniform(126, 2));
}

TEST(WideKeyCodec, KeysNeverCollideWithEmptySentinel) {
  // Every encoded word stays below 2^63; the sentinel is all-ones.
  const WideKeyCodec codec = WideKeyCodec::uniform(126, 2);
  std::vector<State> all_ones(126, 1);
  const WideKey key = codec.encode(all_ones);
  EXPECT_LT(key.lo, 1ULL << 63);
  EXPECT_LT(key.hi, 1ULL << 63);
  EXPECT_FALSE(key == WideOpenHashTable::kEmptyKey);
}

TEST(WideOpenHashTable, CountsAndGrows) {
  WideOpenHashTable table(4);
  Xoshiro256 rng(303);
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> reference;
  for (int i = 0; i < 20000; ++i) {
    const WideKey key{rng.bounded(1000), rng.bounded(50)};
    table.increment(key);
    ++reference[{key.lo, key.hi}];
  }
  EXPECT_EQ(table.size(), reference.size());
  for (const auto& [k, c] : reference) {
    EXPECT_EQ(table.count(WideKey{k.first, k.second}), c);
  }
  EXPECT_EQ(table.total_count(), 20000u);
}

TEST(WideBuilder, MatchesNarrowBuilderWhereBothApply) {
  // On a dataset the 64-bit path can handle, both builders must agree.
  const Dataset data = generate_chain_correlated(20000, 12, 2, 0.7, 304);
  WideBuilderOptions wide_options;
  wide_options.threads = 4;
  const WidePotentialTable wide = WideWaitFreeBuilder(wide_options).build(data);

  WaitFreeBuilderOptions narrow_options;
  narrow_options.threads = 4;
  WaitFreeBuilder narrow_builder(narrow_options);
  const PotentialTable narrow = narrow_builder.build(data);

  EXPECT_EQ(wide.distinct_keys(), narrow.distinct_keys());
  EXPECT_EQ(wide.total_count(), narrow.partitions().total_count());
  // Spot-check marginals agree exactly.
  const std::size_t vars[] = {0, 7};
  const MarginalTable wide_marg = wide_marginalize(wide, vars, 4);
  const MarginalTable narrow_marg = narrow.marginalize_sequential(vars);
  for (std::uint64_t cell = 0; cell < wide_marg.cell_count(); ++cell) {
    EXPECT_EQ(wide_marg.count_at(cell), narrow_marg.count_at(cell));
  }
}

TEST(WideBuilder, HandlesHundredVariableNetworks) {
  // The headline capability: phase 1 on n = 100 binary variables.
  const Dataset data = generate_chain_correlated(20000, 100, 2, 0.8, 305);
  WideBuilderOptions options;
  options.threads = 4;
  const WidePotentialTable table = WideWaitFreeBuilder(options).build(data);
  EXPECT_EQ(table.sample_count(), 20000u);
  EXPECT_EQ(table.total_count(), 20000u);

  // Marginals across the word boundary (variables 62 and 63 live in
  // different words).
  const std::size_t boundary[] = {62, 63};
  const MarginalTable joint = wide_marginalize(table, boundary, 4);
  EXPECT_EQ(joint.total(), 20000u);
  // Chain correlation: strong dependence between adjacent variables.
  EXPECT_GT(mutual_information(joint), 0.1);
}

TEST(WideBuilder, AllPairsMiOrdersChainNeighbors) {
  const Dataset data = generate_chain_correlated(15000, 70, 2, 0.85, 306);
  WideBuilderOptions options;
  options.threads = 4;
  const WidePotentialTable table = WideWaitFreeBuilder(options).build(data);
  const MiMatrix mi = wide_all_pairs_mi(table, 4);
  // Adjacent pairs dominate two-hop pairs, including across the word split.
  for (const std::size_t i : {0ul, 30ul, 61ul, 62ul, 63ul, 67ul}) {
    EXPECT_GT(mi.at(i, i + 1), mi.at(i, i + 2)) << "at variable " << i;
  }
}

TEST(WideBuilder, ThreadCountInvariant) {
  const Dataset data = generate_uniform(10000, 80, 2, 307);
  WideBuilderOptions one;
  one.threads = 1;
  WideBuilderOptions eight;
  eight.threads = 8;
  const WidePotentialTable a = WideWaitFreeBuilder(one).build(data);
  const WidePotentialTable b = WideWaitFreeBuilder(eight).build(data);
  EXPECT_EQ(a.distinct_keys(), b.distinct_keys());
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> counts_a;
  a.for_each([&](WideKey k, std::uint64_t c) { counts_a[{k.lo, k.hi}] = c; });
  bool all_match = true;
  b.for_each([&](WideKey k, std::uint64_t c) {
    const auto it = counts_a.find({k.lo, k.hi});
    if (it == counts_a.end() || it->second != c) all_match = false;
  });
  EXPECT_TRUE(all_match);
}

TEST(WideBuilder, RejectsBadArguments) {
  WideBuilderOptions zero;
  zero.threads = 0;
  EXPECT_THROW(WideWaitFreeBuilder{zero}, PreconditionError);
  const Dataset empty(0, {2, 2});
  WideWaitFreeBuilder builder;
  EXPECT_THROW((void)builder.build(empty), PreconditionError);
}

}  // namespace
}  // namespace wfbn
