// wfcheck harnesses: the wait-free primitives — the exact templated sources
// production uses, instantiated with the ModelAtomics policy — run under the
// deterministic model checker (src/analysis/). The *_Exhaustive tests are
// the acceptance gates: every schedule within the preemption bound passes.
// The selftest suite mutates one release store to relaxed via the
// demote_store_loc knob and proves the checker reports the resulting race;
// the replay suite proves a schedule's seed reproduces its trace
// byte-for-byte.
//
// When a check unexpectedly fails, the full failure trace (interleaving +
// happens-before edges + replay recipe) is attached to the gtest failure and
// also written to $WFCHECK_TRACE_DIR if set — CI uploads that directory as
// an artifact.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/wfcheck.hpp"
#include "concurrent/barrier.hpp"
#include "concurrent/retire_gate.hpp"
#include "concurrent/spsc_queue.hpp"
#include "serve/snapshot_cell.hpp"

namespace mc = wfbn::mc;

namespace {

void report_failure(const mc::CheckResult& result, const std::string& name) {
  const std::string text = result.trace.to_string() + "\n" + result.summary();
  if (const char* dir = std::getenv("WFCHECK_TRACE_DIR")) {
    std::ofstream out(std::string(dir) + "/" + name + ".trace.txt");
    out << text << "\n";
  }
  ADD_FAILURE() << name << " found a failing schedule:\n" << text;
}

#define EXPECT_WFCHECK_OK(result, name)                  \
  do {                                                   \
    if (!(result).ok) report_failure((result), (name));  \
  } while (false)

// ---------------------------------------------------------------------------
// Harness bodies (shared between the positive checks and the self-tests).
// ---------------------------------------------------------------------------

// Scalar SPSC: 3 items through chunks of 2, so the consumer crosses a chunk
// boundary and the fill-then-link publication of a fresh chunk is exercised.
void spsc_scalar_body() {
  using Queue = wfbn::SpscQueue<std::uint32_t, 2, mc::ModelAtomics>;
  auto q = std::make_unique<Queue>();
  const std::size_t producer = mc::spawn([&q] {
    for (std::uint32_t v = 1; v <= 3; ++v) q->push(v);
  });
  const std::size_t consumer = mc::spawn([&q] {
    std::uint32_t expect = 1;
    while (expect <= 3) {
      std::uint32_t v = 0;
      if (q->try_pop(v)) {
        mc::model_assert(v == expect, "try_pop out of FIFO order");
        ++expect;
      } else {
        mc::yield();
      }
    }
  });
  mc::join(producer);
  mc::join(consumer);
  mc::model_assert(q->pushed() == 3, "pushed() != 3 after join");
  mc::model_assert(q->empty(), "queue not empty after consuming everything");
}

// Bulk SPSC: one push_block spanning two chunks (5 items / capacity 4) plus
// a trailing scalar push, drained with consume() — the write-combining path.
void spsc_bulk_body() {
  using Queue = wfbn::SpscQueue<std::uint32_t, 4, mc::ModelAtomics>;
  auto q = std::make_unique<Queue>();
  const std::size_t producer = mc::spawn([&q] {
    const std::uint32_t block[5] = {1, 2, 3, 4, 5};
    q->push_block(block, 5);
    q->push(6);
  });
  const std::size_t consumer = mc::spawn([&q] {
    std::vector<std::uint32_t> seen;
    while (seen.size() < 6) {
      const std::size_t got = q->consume([&](const auto* items, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i)
          seen.push_back(static_cast<std::uint32_t>(items[i]));
      });
      if (got == 0) mc::yield();
    }
    mc::model_assert(seen.size() == 6, "consume over-delivered");
    for (std::size_t i = 0; i < seen.size(); ++i)
      mc::model_assert(seen[i] == i + 1, "consume out of FIFO order");
  });
  mc::join(producer);
  mc::join(consumer);
  mc::model_assert(q->pushed() == 6, "pushed() != 6 after join");
  mc::model_assert(q->empty(), "queue not empty after consuming everything");
}

// Sense-reversing barrier: two participants, three crossings (sense flips
// false->true->false->true), each side writing its own slot before a
// crossing and reading the other's after — the classic use the builders
// depend on between stage 1 and stage 2.
void barrier_body() {
  struct Shared {
    wfbn::BasicSpinBarrier<mc::ModelAtomics> barrier{2};
    mc::ModelData<int> slot0{0};
    mc::ModelData<int> slot1{0};
  };
  auto sh = std::make_unique<Shared>();
  auto participant = [&sh](mc::ModelData<int>& mine, mc::ModelData<int>& theirs,
                           int base) {
    mine = base;
    sh->barrier.arrive_and_wait();
    mc::model_assert(static_cast<int>(theirs) == 3 - base,
                     "phase-1 write not visible after barrier");
    sh->barrier.arrive_and_wait();
    mine = base + 10;
    sh->barrier.arrive_and_wait();
    mc::model_assert(static_cast<int>(theirs) == 13 - base,
                     "phase-2 write not visible after barrier");
  };
  const std::size_t t1 =
      mc::spawn([&] { participant(sh->slot0, sh->slot1, 1); });
  const std::size_t t2 =
      mc::spawn([&] { participant(sh->slot1, sh->slot0, 2); });
  mc::join(t1);
  mc::join(t2);
}

// Left-right snapshot publish: a single writer republishing twice while two
// wait-free readers pin and read concurrently. Payload fields are
// race-checked cells, so a broken drain (reader still copying the instance
// the writer reuses) surfaces as a data race or use-after-free, and torn
// payloads surface as the a/b consistency assertion.
void snapshot_publish_body() {
  struct Payload {
    mc::ModelData<int> a;
    mc::ModelData<int> b;
    explicit Payload(int v) : a(v), b(v * 10) {}
  };
  using Cell =
      wfbn::serve::BasicPtrCell<std::shared_ptr<Payload>, mc::ModelAtomics>;
  auto cell = std::make_unique<Cell>(std::make_shared<Payload>(1));
  const std::size_t writer = mc::spawn([&cell] {
    cell->store(std::make_shared<Payload>(2));
    cell->store(std::make_shared<Payload>(3));
  });
  auto reader = [&cell] {
    int prev = 1;
    for (int i = 0; i < 2; ++i) {
      const std::shared_ptr<Payload> p = cell->load();
      const int a = p->a;
      const int b = p->b;
      mc::model_assert(b == a * 10, "torn payload: a/b from different versions");
      mc::model_assert(a >= 1 && a <= 3, "payload version out of range");
      mc::model_assert(a >= prev, "snapshot version went backwards");
      prev = a;
    }
  };
  const std::size_t r1 = mc::spawn(reader);
  const std::size_t r2 = mc::spawn(reader);
  mc::join(writer);
  mc::join(r1);
  mc::join(r2);
  const std::shared_ptr<Payload> final_p = cell->load();
  mc::model_assert(static_cast<int>(final_p->a) == 3,
                   "final snapshot is not the last published version");
}

// Builder retirement protocol (core/wait_free_builder.cpp build_pipelined,
// via concurrent/retire_gate.hpp): two symmetric workers each publish their
// last production into a race-checked slot, retire through the gate, then
// spin until every peer has retired and read the peers' slots — the "final
// drain" that build_pipelined performs once all_retired() holds. The
// acq_rel fetch_add in retire() is the only thing making the peer's write
// visible; the self-test below demotes exactly that edge.
void builder_retire_body() {
  struct Shared {
    // Construct the gate first so its done_ counter is atomic id 0 — the
    // location the mutation self-test demotes.
    wfbn::BasicRetireGate<mc::ModelAtomics> gate{2};
    mc::ModelData<int> slot0{0};
    mc::ModelData<int> slot1{0};
  };
  auto sh = std::make_unique<Shared>();
  auto worker = [&sh](mc::ModelData<int>& mine, mc::ModelData<int>& theirs,
                      int value) {
    mine = value;       // the last batch this producer routes
    sh->gate.retire();  // release-publishes the write above
    while (!sh->gate.aborted() && !sh->gate.all_retired()) mc::yield();
    if (!sh->gate.aborted()) {
      // Final drain: the peer retired, so its production must be visible.
      mc::model_assert(static_cast<int>(theirs) == 3 - value,
                       "peer's pre-retire write not visible after "
                       "all_retired()");
    }
  };
  const std::size_t w0 = mc::spawn([&] { worker(sh->slot0, sh->slot1, 1); });
  const std::size_t w1 = mc::spawn([&] { worker(sh->slot1, sh->slot0, 2); });
  mc::join(w0);
  mc::join(w1);
  mc::model_assert(sh->gate.all_retired(), "join without full retirement");
  mc::model_assert(!sh->gate.aborted(), "spurious abort");
}

// The fault-abort path: one worker fails before producing anything and exits
// through abort_and_retire() — exactly what build_pipelined's catch block
// does. The healthy worker must (a) never deadlock waiting for the failed
// producer (the conditional retire keeps the count truthful) and (b) observe
// the error state published before the abort, through the abort flag's
// release/acquire edge.
void builder_retire_abort_body() {
  struct Shared {
    wfbn::BasicRetireGate<mc::ModelAtomics> gate{2};
    mc::ModelData<int> error_code{0};
  };
  auto sh = std::make_unique<Shared>();
  const std::size_t faulty = mc::spawn([&sh] {
    sh->error_code = 42;  // state the abort must publish
    sh->gate.abort_and_retire(/*already_retired=*/false);
  });
  const std::size_t healthy = mc::spawn([&sh] {
    // Producer loop with abort polling, then the normal retire + wait.
    for (int batch = 0; batch < 2 && !sh->gate.aborted(); ++batch) {
      mc::yield();
    }
    sh->gate.retire();
    while (!sh->gate.aborted() && !sh->gate.all_retired()) mc::yield();
    if (sh->gate.aborted()) {
      mc::model_assert(static_cast<int>(sh->error_code) == 42,
                       "error state not published by abort()");
    }
  });
  mc::join(faulty);
  mc::join(healthy);
  mc::model_assert(sh->gate.all_retired(),
                   "abort path lost a retirement: peers would spin forever");
  mc::model_assert(sh->gate.aborted(), "abort flag lost");
}

}  // namespace

// ---------------------------------------------------------------------------
// Positive checks: every schedule within the bound passes, and the schedule
// space is actually exhausted (not cut off by the execution budget).
// ---------------------------------------------------------------------------

TEST(model_spsc_scalar, ExhaustiveWithinBoundHolds) {
  mc::ModelOptions opts;
  const mc::CheckResult result = mc::check(opts, spsc_scalar_body);
  EXPECT_WFCHECK_OK(result, "model_spsc_scalar");
  EXPECT_TRUE(result.exhausted) << result.summary();
  EXPECT_GT(result.exhaustive_executions, 1u) << result.summary();
  EXPECT_GT(result.branch_points, 0u) << result.summary();
  EXPECT_GE(result.shared_locations, 2u) << result.summary();
}

TEST(model_spsc_bulk, ExhaustiveWithinBoundHolds) {
  mc::ModelOptions opts;
  const mc::CheckResult result = mc::check(opts, spsc_bulk_body);
  EXPECT_WFCHECK_OK(result, "model_spsc_bulk");
  EXPECT_TRUE(result.exhausted) << result.summary();
  EXPECT_GT(result.exhaustive_executions, 1u) << result.summary();
}

TEST(model_barrier, ExhaustiveWithinBoundHolds) {
  mc::ModelOptions opts;
  const mc::CheckResult result = mc::check(opts, barrier_body);
  EXPECT_WFCHECK_OK(result, "model_barrier");
  EXPECT_TRUE(result.exhausted) << result.summary();
  EXPECT_GT(result.exhaustive_executions, 1u) << result.summary();
}

TEST(model_snapshot_publish, ExhaustiveWithinBoundHolds) {
  mc::ModelOptions opts;
  const mc::CheckResult result = mc::check(opts, snapshot_publish_body);
  EXPECT_WFCHECK_OK(result, "model_snapshot_publish");
  EXPECT_TRUE(result.exhausted) << result.summary();
  EXPECT_GT(result.exhaustive_executions, 1u) << result.summary();
}

TEST(model_builder_retire, ExhaustiveWithinBoundHolds) {
  mc::ModelOptions opts;
  const mc::CheckResult result = mc::check(opts, builder_retire_body);
  EXPECT_WFCHECK_OK(result, "model_builder_retire");
  EXPECT_TRUE(result.exhausted) << result.summary();
  EXPECT_GT(result.exhaustive_executions, 1u) << result.summary();
  EXPECT_GE(result.shared_locations, 2u) << result.summary();
}

TEST(model_builder_retire_abort, ExhaustiveWithinBoundHolds) {
  mc::ModelOptions opts;
  const mc::CheckResult result = mc::check(opts, builder_retire_abort_body);
  EXPECT_WFCHECK_OK(result, "model_builder_retire_abort");
  EXPECT_TRUE(result.exhausted) << result.summary();
  EXPECT_GT(result.exhaustive_executions, 1u) << result.summary();
}

// ---------------------------------------------------------------------------
// Self-tests: mutate ONE release store to relaxed (by creation-order atomic
// id) and the checker must find and explain the resulting race. If these
// ever pass silently the checker is broken, whatever the positive tests say.
// ---------------------------------------------------------------------------

TEST(wfcheck_selftest, DemotedQueuePublishIsCaught) {
  mc::ModelOptions opts;
  // Atomic id 0 is the first chunk's count cell (items are data cells in a
  // separate id space): the release store publishing each scalar push.
  opts.demote_store_loc = 0;
  const mc::CheckResult result = mc::check(opts, spsc_scalar_body);
  ASSERT_FALSE(result.ok) << "checker missed the demoted release store: "
                          << result.summary();
  EXPECT_NE(result.failure.find("data race"), std::string::npos)
      << result.failure;
  EXPECT_FALSE(result.trace.events.empty());
  const std::string text = result.trace.to_string();
  EXPECT_NE(text.find("DEMOTED"), std::string::npos) << text;
  EXPECT_NE(text.find("happens-before"), std::string::npos) << text;
}

TEST(wfcheck_selftest, DemotedBarrierSenseIsCaught) {
  mc::ModelOptions opts;
  // Atomic id 1 is the barrier's sense_ cell (remaining_ is id 0): demoting
  // its release store strips the edge that publishes the phase-1 writes.
  opts.demote_store_loc = 1;
  const mc::CheckResult result = mc::check(opts, barrier_body);
  ASSERT_FALSE(result.ok) << "checker missed the demoted sense store: "
                          << result.summary();
  EXPECT_NE(result.failure.find("data race"), std::string::npos)
      << result.failure;
}

TEST(wfcheck_selftest, DemotedRetireIsCaught) {
  mc::ModelOptions opts;
  // Atomic id 0 is the gate's done_ counter (constructed first in Shared):
  // demoting retire()'s acq_rel fetch_add strips the release edge that
  // publishes each producer's final batch, so the peer's post-all_retired()
  // read of the slot races with the pre-retire write.
  opts.demote_store_loc = 0;
  const mc::CheckResult result = mc::check(opts, builder_retire_body);
  ASSERT_FALSE(result.ok) << "checker missed the demoted retire edge: "
                          << result.summary();
  EXPECT_NE(result.failure.find("data race"), std::string::npos)
      << result.failure;
  EXPECT_NE(result.trace.to_string().find("DEMOTED"), std::string::npos)
      << result.trace.to_string();
}

TEST(wfcheck_selftest, DeadlockIsDetected) {
  // A 3-participant barrier with only 2 arrivers: both spin forever on a
  // sense that can never flip. Every schedule deadlocks.
  mc::ModelOptions opts;
  opts.random_schedules = 0;
  const mc::CheckResult result = mc::check(opts, [] {
    auto barrier =
        std::make_unique<wfbn::BasicSpinBarrier<mc::ModelAtomics>>(3);
    const std::size_t t1 = mc::spawn([&] { barrier->arrive_and_wait(); });
    const std::size_t t2 = mc::spawn([&] { barrier->arrive_and_wait(); });
    mc::join(t1);
    mc::join(t2);
  });
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.failure.find("deadlock"), std::string::npos)
      << result.failure;
}

// ---------------------------------------------------------------------------
// Replay: schedules are pure functions of their seed.
// ---------------------------------------------------------------------------

TEST(wfcheck_replay, SeedReplayIsByteForByteDeterministic) {
  mc::ModelOptions opts;
  const mc::Trace first = mc::replay_seed(opts, 123456789u, spsc_scalar_body);
  const mc::Trace second = mc::replay_seed(opts, 123456789u, spsc_scalar_body);
  ASSERT_FALSE(first.events.empty());
  EXPECT_EQ(first.to_string(), second.to_string());
  // A different seed must drive a different schedule (same ops, different
  // interleaving) — otherwise the "seed" is not actually steering anything.
  const mc::Trace other = mc::replay_seed(opts, 987654321u, spsc_scalar_body);
  EXPECT_NE(first.to_string(), other.to_string());
}

TEST(wfcheck_replay, FailingScheduleSeedReproducesIdenticalTrace) {
  mc::ModelOptions opts;
  opts.demote_store_loc = 0;
  // Skip the exhaustive phase entirely so the failure is found by a seeded
  // random schedule and the reported trace carries its seed.
  opts.max_exhaustive_executions = 0;
  opts.random_schedules = 64;
  const mc::CheckResult result = mc::check(opts, spsc_scalar_body);
  ASSERT_FALSE(result.ok) << result.summary();
  ASSERT_NE(result.trace.seed, 0u) << "failure did not come from a seeded run";
  const mc::Trace replayed =
      mc::replay_seed(opts, result.trace.seed, spsc_scalar_body);
  EXPECT_EQ(result.trace.to_string(), replayed.to_string());
  EXPECT_EQ(result.failure, replayed.failure);
}

TEST(wfcheck_replay, ExhaustiveEnumerationIsDeterministic) {
  mc::ModelOptions opts;
  opts.random_schedules = 0;
  const mc::CheckResult a = mc::check(opts, spsc_scalar_body);
  const mc::CheckResult b = mc::check(opts, spsc_scalar_body);
  ASSERT_TRUE(a.ok && b.ok) << a.summary() << "\n" << b.summary();
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.branch_points, b.branch_points);
  EXPECT_EQ(a.sleep_set_prunes, b.sleep_set_prunes);
  EXPECT_EQ(a.shared_locations, b.shared_locations);
}
