// Coverage for the smaller API surfaces: affinity helpers, builder stats,
// orientation-off paths, pinning, and assorted option plumbing.
#include <gtest/gtest.h>

#include "concurrent/affinity.hpp"
#include "core/wait_free_builder.hpp"
#include "data/generators.hpp"
#include "learn/cheng.hpp"
#include "learn/pc_stable.hpp"
#include "sim/cost_model.hpp"
#include "util/error.hpp"

namespace wfbn {
namespace {

TEST(Affinity, ReportsAtLeastOneCore) {
  EXPECT_GE(hardware_cores(), 1u);
}

TEST(Affinity, PinningDoesNotCrashAndWrapsIndices) {
  // Pinning may be denied in a container; the call must simply return.
  (void)pin_current_thread(0);
  (void)pin_current_thread(hardware_cores() * 3 + 1);
  SUCCEED();
}

TEST(WaitFreeBuilder, PinnedBuildIsStillExact) {
  const Dataset data = generate_uniform(5000, 8, 2, 701);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  options.pin_threads = true;
  WaitFreeBuilder builder(options);
  const PotentialTable table = builder.build(data);
  EXPECT_EQ(table.partitions().total_count(), 5000u);
}

TEST(BuildStats, CriticalPathAndAggregates) {
  const Dataset data = generate_uniform(20000, 10, 2, 702);
  WaitFreeBuilderOptions options;
  options.threads = 4;
  WaitFreeBuilder builder(options);
  (void)builder.build(data);
  const BuildStats& stats = builder.stats();
  EXPECT_GT(stats.critical_path_seconds(), 0.0);
  // Critical path is at least the busiest worker's stage-1 time.
  double max_stage1 = 0.0;
  for (const WorkerStats& w : stats.workers) {
    max_stage1 = std::max(max_stage1, w.stage1_seconds);
  }
  EXPECT_GE(stats.critical_path_seconds() + 1e-12, max_stage1);
  EXPECT_EQ(stats.total_local_updates() + stats.total_foreign_pushes(), 20000u);
}

TEST(Cheng, OrientationCanBeDisabled) {
  const Dataset data = generate_chain_correlated(20000, 4, 2, 0.8, 703);
  ChengOptions options;
  options.ci.threads = 2;
  options.orient = false;
  const ChengResult result = ChengLearner(options).learn(data);
  // Fallback orientation: every edge low → high.
  for (const Edge& e : result.oriented.edges()) {
    EXPECT_LT(e.from, e.to);
  }
  EXPECT_EQ(result.oriented.edge_count(), result.skeleton.edge_count());
}

TEST(PcStable, OrientationCanBeDisabled) {
  const Dataset data = generate_chain_correlated(20000, 4, 2, 0.8, 704);
  PcStableOptions options;
  options.ci.threads = 2;
  options.orient = false;
  const PcStableResult result = PcStableLearner(options).learn(data);
  for (const Edge& e : result.oriented.edges()) {
    EXPECT_LT(e.from, e.to);
  }
}

TEST(CostModel, PredictionsValidateInputs) {
  MachineModel model;  // defaults are fine for shape checks
  BuildStats empty;
  EXPECT_THROW((void)predict_wait_free_seconds(model, empty, 10),
               PreconditionError);
  EXPECT_THROW((void)predict_locked_seconds(model, 100, 10, 0, 64),
               PreconditionError);
  EXPECT_THROW((void)predict_locked_seconds(model, 100, 10, 4, 0),
               PreconditionError);
  EXPECT_THROW((void)predict_atomic_seconds(model, 100, 10, 0),
               PreconditionError);
  EXPECT_THROW((void)predict_sweep_seconds(model, {}, 2, 1.0),
               PreconditionError);
}

TEST(CostModel, DefaultModelHasDocumentedShape) {
  // Even without calibration, the default constants produce the qualitative
  // ordering the figures rely on.
  const MachineModel model;
  const double wait_free_ish =
      predict_atomic_seconds(model, 1000000, 30, 1);  // serial baseline proxy
  EXPECT_GT(predict_locked_seconds(model, 1000000, 30, 32, 256),
            wait_free_ish / 32.0);
}

TEST(WorkerStats, PipelinedStatsAccountForAllRows) {
  const Dataset data = generate_uniform(15000, 8, 2, 705);
  WaitFreeBuilderOptions options;
  options.threads = 3;
  options.pipelined = true;
  WaitFreeBuilder builder(options);
  (void)builder.build(data);
  std::uint64_t rows = 0;
  std::uint64_t pops = 0;
  std::uint64_t foreign = 0;
  for (const WorkerStats& w : builder.stats().workers) {
    rows += w.rows_encoded;
    pops += w.stage2_pops;
    foreign += w.foreign_pushes;
  }
  EXPECT_EQ(rows, 15000u);
  EXPECT_EQ(pops, foreign);
}

}  // namespace
}  // namespace wfbn
