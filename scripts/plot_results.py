#!/usr/bin/env python3
"""Plot the figure-reproduction benches' CSV output.

Usage:
    build/bench/fig3_table_construction --csv > fig3.txt
    scripts/plot_results.py fig3.txt -o fig3.png

Parses the `-- CSV (...) --` blocks the benches emit with --csv and renders
runtime (log-log) and speedup panels side by side, one line per series —
the same presentation as the paper's figures. Requires matplotlib (optional
dependency; everything else in this repository is plain C++).
"""

import argparse
import collections
import re
import sys


def parse_csv_blocks(path):
    """Returns {block_title: [(series, cores, value), ...]}."""
    blocks = {}
    title = None
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            header = re.match(r"^-- CSV \((.+)\) --$", line)
            if header:
                title = header.group(1)
                blocks[title] = []
                continue
            if title is None or not line:
                continue
            parts = line.split(",")
            if len(parts) != 3 or parts[1] in ("cores",):
                continue
            try:
                blocks[title].append((parts[0], int(parts[1]), float(parts[2])))
            except ValueError:
                continue  # header row
    return {k: v for k, v in blocks.items() if v}


def series_of(rows):
    grouped = collections.OrderedDict()
    for name, cores, value in rows:
        grouped.setdefault(name, []).append((cores, value))
    return grouped


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("input", help="bench output captured with --csv")
    parser.add_argument("-o", "--output", default="figure.png")
    parser.add_argument("--title", default=None)
    args = parser.parse_args()

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    blocks = parse_csv_blocks(args.input)
    if not blocks:
        sys.exit(f"no '-- CSV (...) --' blocks found in {args.input}; "
                 "re-run the bench with --csv")

    runtime_blocks = {k: v for k, v in blocks.items() if "runtime" in k}
    speedup_blocks = {k: v for k, v in blocks.items() if "speedup" in k}
    panels = []
    for k, v in runtime_blocks.items():
        panels.append((k, v, "runtime [ms]", True))
    for k, v in speedup_blocks.items():
        panels.append((k, v, "speedup ×", False))
    if not panels:
        panels = [(k, v, "value", False) for k, v in blocks.items()]

    fig, axes = plt.subplots(1, len(panels), figsize=(6 * len(panels), 4.5))
    if len(panels) == 1:
        axes = [axes]
    for axis, (name, rows, ylabel, log_y) in zip(axes, panels):
        for series, points in series_of(rows).items():
            points.sort()
            xs = [p[0] for p in points]
            ys = [p[1] for p in points]
            style = "--" if "tbb" in series or "lock" in series else "-"
            axis.plot(xs, ys, style, marker="o", label=series)
        axis.set_xscale("log", base=2)
        if log_y:
            axis.set_yscale("log")
        axis.set_xlabel("cores")
        axis.set_ylabel(ylabel)
        axis.set_title(name, fontsize=9)
        axis.grid(True, which="both", alpha=0.3)
        axis.legend(fontsize=7)
    if args.title:
        fig.suptitle(args.title)
    fig.tight_layout()
    fig.savefig(args.output, dpi=150)
    print(f"wrote {args.output} ({len(panels)} panel(s))")


if __name__ == "__main__":
    main()
