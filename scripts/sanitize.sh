#!/usr/bin/env bash
# Build and run the test suite under a sanitizer.
#
#   scripts/sanitize.sh thread                # TSan
#   scripts/sanitize.sh address,undefined     # ASan + UBSan
#   scripts/sanitize.sh thread test_fault_injection test_fuzz
#   scripts/sanitize.sh thread test_serve     # serving layer: readers live
#                                             # during snapshot publishes
#   scripts/sanitize.sh thread -- -DWFBN_WERROR=ON
#   CXX=clang++ scripts/sanitize.sh thread test_serve -- -DWFBN_BENCH=OFF
#
# The first argument is passed to -DWFBN_SANITIZE; any further arguments
# select specific test binaries (default: the full ctest suite). Everything
# after a literal `--` is forwarded verbatim to the CMake configure step, so
# one-off flags (a different standard, an option toggle) don't require
# editing this script.
#
# Each sanitizer gets its own build tree (build-<sanitizer>) so
# configurations don't clobber each other. A tree configured with a
# DIFFERENT compiler than the current environment requests is rejected up
# front: sanitizer runtimes are not ABI-compatible across compilers, and a
# silent reuse of the stale cache produces link errors — or worse, a clean
# run with the wrong instrumentation. Remove the tree (or unset CXX) to
# proceed.
set -euo pipefail

SANITIZER="${1:?usage: scripts/sanitize.sh <thread|address,undefined|...> [test ...] [-- cmake-args...]}"
shift || true

# Split remaining arguments into test targets and pass-through CMake args.
TESTS=()
CMAKE_EXTRA=()
seen_dashdash=0
for arg in "$@"; do
  if [[ $seen_dashdash -eq 1 ]]; then
    CMAKE_EXTRA+=("$arg")
  elif [[ "$arg" == "--" ]]; then
    seen_dashdash=1
  else
    TESTS+=("$arg")
  fi
done

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-${SANITIZER//,/-}"

# Fail fast on a stale tree: if build-<sanitizer> was configured with a
# different C++ compiler than this invocation would use, the cached
# configuration wins over the environment and the mismatch surfaces late
# (or not at all). Detect it here and stop with instructions instead.
CACHE="${BUILD}/CMakeCache.txt"
if [[ -f "${CACHE}" && -n "${CXX:-}" ]]; then
  cached_cxx="$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' "${CACHE}" | head -n 1)"
  want_cxx="$(command -v "${CXX}" || echo "${CXX}")"
  if [[ -n "${cached_cxx}" && "${cached_cxx}" != "${want_cxx}" ]]; then
    echo "error: ${BUILD} was configured with" >&2
    echo "         ${cached_cxx}" >&2
    echo "       but CXX=${CXX} resolves to" >&2
    echo "         ${want_cxx}" >&2
    echo "       Sanitizer runtimes are not compatible across compilers." >&2
    echo "       Remove the tree (rm -rf ${BUILD}) or unset CXX." >&2
    exit 2
  fi
fi

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

cmake -B "${BUILD}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DWFBN_SANITIZE="${SANITIZER}" \
  ${CMAKE_EXTRA[@]+"${CMAKE_EXTRA[@]}"}

if [[ ${#TESTS[@]} -eq 0 ]]; then
  cmake --build "${BUILD}" -j
  ctest --test-dir "${BUILD}" --output-on-failure -j "$(nproc)"
else
  cmake --build "${BUILD}" -j --target "${TESTS[@]}"
  for test in "${TESTS[@]}"; do
    "${BUILD}/tests/${test}"
  done
fi
