#!/usr/bin/env bash
# Build and run the test suite under a sanitizer.
#
#   scripts/sanitize.sh thread                # TSan
#   scripts/sanitize.sh address,undefined     # ASan + UBSan
#   scripts/sanitize.sh thread test_fault_injection test_fuzz
#   scripts/sanitize.sh thread test_serve     # serving layer: readers live
#                                             # during snapshot publishes
#
# The first argument is passed to -DWFBN_SANITIZE; any further arguments
# select specific test binaries (default: the full ctest suite). Each
# sanitizer gets its own build tree (build-<sanitizer>) so configurations
# don't clobber each other.
set -euo pipefail

SANITIZER="${1:?usage: scripts/sanitize.sh <thread|address,undefined|...> [test ...]}"
shift || true

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-${SANITIZER//,/-}"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

cmake -B "${BUILD}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DWFBN_SANITIZE="${SANITIZER}"

if [[ $# -eq 0 ]]; then
  cmake --build "${BUILD}" -j
  ctest --test-dir "${BUILD}" --output-on-failure -j "$(nproc)"
else
  cmake --build "${BUILD}" -j --target "$@"
  for test in "$@"; do
    "${BUILD}/tests/${test}"
  done
fi
