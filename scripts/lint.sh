#!/usr/bin/env bash
# Build and run wfbn-lint over the tree. Exit codes: 0 clean, 1 findings,
# 2 usage/build/IO error. Pass --fix-docs to regenerate the generated doc
# blocks (docs/ALGORITHMS.md atomics audit, docs/ROBUSTNESS.md fault points)
# instead of just checking them; any other arguments are forwarded too.
#
#   scripts/lint.sh                # check, human output
#   scripts/lint.sh --json         # check, machine output (CI artifact)
#   scripts/lint.sh --fix-docs     # repair doc drift, then re-check
set -u
cd "$(dirname "$0")/.."

BUILD_DIR="${WFBN_LINT_BUILD_DIR:-build-lint}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DWFBN_BUILD_TESTS=OFF -DWFBN_BUILD_BENCH=OFF -DWFBN_BUILD_EXAMPLES=OFF \
  > /dev/null || exit 2
cmake --build "$BUILD_DIR" --target wfbn_lint -j "$(nproc)" > /dev/null || exit 2

"$BUILD_DIR/tools/wfbn_lint/wfbn_lint" --root . "$@"
