#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy at the repo root) over the
# concurrency-critical directories — src/concurrent, src/serve, src/net, and
# src/learn — plus any extra files/directories passed as arguments.
#
#   scripts/clang_tidy.sh                 # the default gate CI runs
#   scripts/clang_tidy.sh src/analysis    # widen the net
#
# Uses build-tidy/ for the compilation database so it never disturbs an
# existing build/ tree. Requires clang-tidy (and any clang toolchain) on
# PATH; fails fast with a clear message when it is missing so the gate can't
# silently pass.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: clang-tidy not found on PATH — install clang-tools to run this gate" >&2
  exit 2
fi
if ! command -v run-clang-tidy >/dev/null 2>&1 && ! command -v run-clang-tidy.py >/dev/null 2>&1; then
  RUNNER=""
else
  RUNNER="$(command -v run-clang-tidy || command -v run-clang-tidy.py)"
fi

BUILD_DIR=build-tidy
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

# Default scope: every translation unit under the concurrency-critical
# directories. Headers in those directories are covered transitively via
# HeaderFilterRegex in .clang-tidy.
TARGETS=()
for arg in "${@:-src/concurrent src/serve src/net src/learn}"; do
  while IFS= read -r f; do
    TARGETS+=("$f")
  done < <(find $arg -name '*.cpp' | sort)
done

if [ "${#TARGETS[@]}" -eq 0 ]; then
  echo "error: no .cpp files found for: ${*:-src/concurrent src/serve src/net src/learn}" >&2
  exit 2
fi

echo "clang-tidy over ${#TARGETS[@]} translation units..."
if [ -n "$RUNNER" ]; then
  "$RUNNER" -p "$BUILD_DIR" -quiet "${TARGETS[@]}"
else
  clang-tidy -p "$BUILD_DIR" --quiet "${TARGETS[@]}"
fi
echo "clang-tidy: clean"
